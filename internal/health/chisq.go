package health

import "math"

// chiSquaredSurvival returns P(X > x) for X ~ χ²_k, the p-value of the
// Ljung–Box statistic. It is the regularized upper incomplete gamma
// function Q(k/2, x/2), computed with the classic series / continued
// fraction split (series for x < a+1, Lentz continued fraction
// otherwise) so the only stdlib dependency is math.Lgamma.
func chiSquaredSurvival(x float64, k int) float64 {
	if k <= 0 || math.IsNaN(x) {
		return math.NaN()
	}
	if x <= 0 {
		return 1
	}
	if math.IsInf(x, 1) {
		return 0
	}
	a := float64(k) / 2
	x = x / 2
	if x < a+1 {
		return 1 - gammaSeriesP(a, x)
	}
	return gammaContinuedQ(a, x)
}

// gammaSeriesP evaluates the regularized lower incomplete gamma
// P(a, x) by its power series (converges fast for x < a+1).
func gammaSeriesP(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaContinuedQ evaluates the regularized upper incomplete gamma
// Q(a, x) by the Lentz continued fraction (converges fast for x ≥ a+1).
func gammaContinuedQ(a, x float64) float64 {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// ljungBoxP computes the Ljung–Box portmanteau p-value of xs: the
// probability that a white-noise sequence shows autocorrelation at
// least this strong over the first `lags` lags. Small p means the
// innovation sequence is not white — the Kalman filter's model no
// longer explains the measurements (a white innovation is the textbook
// optimality certificate for a correct model). Returns 1 when the
// sample is too short or degenerate to test.
func ljungBoxP(xs []float64, lags int) float64 {
	n := len(xs)
	if lags <= 0 || n < lags+2 {
		return 1
	}
	mean := 0.0
	for _, v := range xs {
		mean += v
	}
	mean /= float64(n)
	c0 := 0.0
	for _, v := range xs {
		d := v - mean
		c0 += d * d
	}
	if c0 <= 0 || math.IsNaN(c0) || math.IsInf(c0, 0) {
		return 1
	}
	q := 0.0
	for k := 1; k <= lags; k++ {
		ck := 0.0
		for i := k; i < n; i++ {
			ck += (xs[i] - mean) * (xs[i-k] - mean)
		}
		rho := ck / c0
		q += rho * rho / float64(n-k)
	}
	q *= float64(n) * (float64(n) + 2)
	return chiSquaredSurvival(q, lags)
}
