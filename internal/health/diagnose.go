package health

import (
	"fmt"
	"io"
	"math"
	"sort"

	"mimoctl/internal/flightrec"
)

// Cause is a ranked root-cause hypothesis for a misbehaving loop.
type Cause string

const (
	CauseHealthy             Cause = "healthy"
	CauseSensorFault         Cause = "sensor-fault"
	CauseActuatorFault       Cause = "actuator-fault"
	CauseModelDrift          Cause = "model-drift"
	CauseInfeasibleReference Cause = "infeasible-reference"
)

// Verdict is one hypothesis with its confidence and the evidence that
// produced it.
type Verdict struct {
	Cause    Cause   `json:"cause"`
	Score    float64 `json:"score"`
	Evidence string  `json:"evidence"`
}

// Diagnosis is the ranked output of Diagnose.
type Diagnosis struct {
	// Verdicts are sorted by descending score; Verdicts[0] is the call.
	Verdicts []Verdict `json:"verdicts"`
	// Records is the number of flight records examined.
	Records int `json:"records"`
}

// Top returns the highest-scoring verdict.
func (d *Diagnosis) Top() Verdict {
	if d == nil || len(d.Verdicts) == 0 {
		return Verdict{Cause: CauseHealthy}
	}
	return d.Verdicts[0]
}

// freezeRunLen is the number of bit-identical consecutive measurements
// that counts as a frozen sensor. The simulated sensors carry
// multiplicative Gaussian noise (1% IPS, 2.5% power), so even two
// identical consecutive float64 readings are vanishingly unlikely on a
// live channel.
const freezeRunLen = 8

// Diagnose examines a flight recording and ranks the root-cause
// hypotheses. It needs nothing but the dump: every detector works off
// the recorded per-epoch evidence (flags, measured vs. true outputs,
// innovation, requested vs. effective configuration, knob pinning).
func Diagnose(meta flightrec.Meta, recs []flightrec.Record) *Diagnosis {
	d := &Diagnosis{Records: len(recs)}
	if len(recs) == 0 {
		d.Verdicts = []Verdict{{Cause: CauseHealthy, Score: 0, Evidence: "empty recording"}}
		return d
	}
	n := float64(len(recs))

	// --- Sensor evidence: sanitization flags, non-finite readings,
	// frozen channels, and measured-vs-true divergence beyond noise.
	sanitized, nonFinite, deviant, extreme := 0, 0, 0, 0
	for _, r := range recs {
		if r.Flags&(flightrec.FlagSanitizedIPS|flightrec.FlagSanitizedPower) != 0 {
			sanitized++
		}
		badIPS := math.IsNaN(r.MeasIPS) || math.IsInf(r.MeasIPS, 0)
		badPow := math.IsNaN(r.MeasPowerW) || math.IsInf(r.MeasPowerW, 0)
		if badIPS || badPow {
			nonFinite++
			continue
		}
		// 1% / 2.5% relative noise: a 15% relative gap is > 5σ on both
		// channels — measurement and plant disagree.
		dev := math.Max(relDev(r.MeasIPS, r.TrueIPS), relDev(r.MeasPowerW, r.TruePowerW))
		if dev > 0.15 {
			deviant++
		}
		if dev > 1.0 {
			extreme++ // a >2× reading is a spike, not noise or drift
		}
	}
	frozen := maxInt(freezeCount(recs, func(r flightrec.Record) float64 { return r.MeasIPS }),
		freezeCount(recs, func(r flightrec.Record) float64 { return r.MeasPowerW }))
	sensorFrac := math.Max(math.Max(float64(sanitized)/n, float64(nonFinite)/n),
		math.Max(float64(frozen)/n, float64(deviant)/n))
	// A sustained fault occupies a contiguous window of the ring (the
	// sweep's is an eighth of the run), so the sustained evidence is
	// weighted to saturate there; sparse extreme spikes are individually
	// damning and weighted far harder.
	sensorScore := clamp01(math.Max(6*sensorFrac, 60*float64(extreme)/n))
	sensorEv := fmt.Sprintf("sanitized %.1f%%, non-finite %.1f%%, frozen %.1f%%, meas/true divergence %.1f%% (spikes %.1f%%) of epochs",
		100*float64(sanitized)/n, 100*float64(nonFinite)/n, 100*float64(frozen)/n, 100*float64(deviant)/n, 100*float64(extreme)/n)

	// --- Actuator evidence: the configuration requested at epoch k
	// should be in effect at epoch k+1; persistent divergence on epochs
	// where a change was requested is the stuck-actuator signature.
	// Explicit apply-failure flags (supervised runs) count directly.
	attempted, missed, applyErrs := 0, 0, 0
	for k := 0; k+1 < len(recs); k++ {
		r, nx := recs[k], recs[k+1]
		if nx.Epoch != r.Epoch+1 {
			continue // ring gap
		}
		if r.Flags&flightrec.FlagApplyError != 0 {
			applyErrs++
		}
		mismatch := reqCfgMismatch(r, nx)
		requested := r.ReqFreq != r.CfgFreq || r.ReqCache != r.CfgCache ||
			(r.ReqROB != flightrec.IdxNA && r.ReqROB != r.CfgROB)
		if requested || mismatch {
			attempted++
			if mismatch {
				missed++
			}
		}
	}
	missFrac := 0.0
	if attempted >= 5 {
		missFrac = float64(missed) / float64(attempted)
	}
	applyFrac := float64(applyErrs) / n
	actuatorScore := clamp01(math.Max(2*missFrac, 6*applyFrac))
	actuatorEv := fmt.Sprintf("%d/%d requested changes not applied, apply errors %.1f%% of epochs",
		missed, attempted, 100*applyFrac)

	// --- Infeasible-reference evidence: knobs pinned at a range limit
	// while the true outputs sit far from target. Both must co-occur; a
	// transient saturation during a step response pins briefly but
	// converges, an unreachable target pins forever and never closes
	// the error.
	pinned, offTarget, both := 0, 0, 0
	for _, r := range recs {
		p := pinnedAtLimit(r, meta)
		o := trackingFar(r)
		if p {
			pinned++
		}
		if o {
			offTarget++
		}
		if p && o {
			both++
		}
	}
	infeasFrac := float64(both) / n
	infeasibleScore := clamp01(1.5*infeasFrac) * (1 - sensorScore) * (1 - actuatorScore)
	infeasibleEv := fmt.Sprintf("knob pinned %.1f%%, off-target %.1f%%, both %.1f%% of epochs",
		100*float64(pinned)/n, 100*float64(offTarget)/n, 100*infeasFrac)

	// --- Model-drift evidence: the innovation magnitude grows over the
	// recording while sensors agree with the plant and actuators obey.
	// The Ljung–Box p only corroborates growth: a quantized-actuation
	// closed loop's innovation is never white even when healthy (the
	// quantizer injects correlated disturbance), so absolute
	// non-whiteness on its own proves nothing here — the online monitor
	// tracks it against a relative baseline instead. Sensor and actuator
	// faults inflate the innovation too, so this score is damped by
	// theirs: drift is the residual hypothesis.
	growth, lbp := innovationTrend(recs)
	growthScore := clamp01((growth - 2) / 6)
	pScore := 0.0
	if growth > 3 && lbp < 1e-4 {
		pScore = clamp01(math.Log10(1e-4/lbp) / 6)
	}
	driftScore := clamp01(math.Max(growthScore, pScore)) *
		(1 - sensorScore) * (1 - actuatorScore) * (1 - infeasibleScore)
	driftEv := fmt.Sprintf("innovation growth ×%.1f, Ljung-Box p=%.2g", growth, lbp)

	worst := math.Max(math.Max(sensorScore, actuatorScore), math.Max(driftScore, infeasibleScore))
	healthyScore := clamp01(1 - worst)
	healthyEv := fmt.Sprintf("no detector above %.2f", worst)

	d.Verdicts = []Verdict{
		{CauseSensorFault, sensorScore, sensorEv},
		{CauseActuatorFault, actuatorScore, actuatorEv},
		{CauseModelDrift, driftScore, driftEv},
		{CauseInfeasibleReference, infeasibleScore, infeasibleEv},
		{CauseHealthy, healthyScore, healthyEv},
	}
	sort.SliceStable(d.Verdicts, func(i, j int) bool { return d.Verdicts[i].Score > d.Verdicts[j].Score })
	return d
}

// relDev is |a−b| relative to |b| (0 when b is ~zero and a is too).
func relDev(a, b float64) float64 {
	if math.Abs(b) < 1e-9 {
		if math.Abs(a) < 1e-9 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(a-b) / math.Abs(b)
}

// freezeCount counts epochs belonging to runs of at least freezeRunLen
// bit-identical consecutive readings. Bit equality (not ==) so frozen
// NaN channels count as frozen too.
func freezeCount(recs []flightrec.Record, get func(flightrec.Record) float64) int {
	total, run := 0, 1
	flush := func() {
		if run >= freezeRunLen {
			total += run
		}
		run = 1
	}
	for k := 1; k < len(recs); k++ {
		if math.Float64bits(get(recs[k])) == math.Float64bits(get(recs[k-1])) {
			run++
			continue
		}
		flush()
	}
	flush()
	return total
}

// reqCfgMismatch reports whether the configuration in effect at the
// next epoch differs from what this epoch requested, on the channels
// the controller actually drives.
func reqCfgMismatch(r, next flightrec.Record) bool {
	if r.Flags&(flightrec.FlagFallback|flightrec.FlagHold) != 0 {
		// Fallback pins and holds re-issue by design; only engaged
		// requests witness the actuator.
		return false
	}
	if r.ReqFreq != next.CfgFreq || r.ReqCache != next.CfgCache {
		return true
	}
	return r.ReqROB != flightrec.IdxNA && r.ReqROB != next.CfgROB
}

// pinnedAtLimit reports whether any driven knob request sits at the
// end of its legal range. Level counts come from the dump's meta; the
// defaults match the simulator's tables (16 frequency steps, 4 cache
// configurations, 8 ROB sizes).
func pinnedAtLimit(r flightrec.Record, meta flightrec.Meta) bool {
	fl, cl, rl := meta.FreqLevels, meta.CacheLevels, meta.ROBLevels
	if fl <= 0 {
		fl = 16
	}
	if cl <= 0 {
		cl = 4
	}
	if rl <= 0 {
		rl = 8
	}
	if r.ReqFreq == 0 || int(r.ReqFreq) == fl-1 {
		return true
	}
	if r.ReqCache == 0 || int(r.ReqCache) == cl-1 {
		return true
	}
	return r.ReqROB != flightrec.IdxNA && (r.ReqROB == 0 || int(r.ReqROB) == rl-1)
}

// trackingFar reports whether the true outputs miss the references by
// more than 20% — far beyond what the certified loop leaves in steady
// state.
func trackingFar(r flightrec.Record) bool {
	if r.IPSTarget > 0 && relDev(r.TrueIPS, r.IPSTarget) > 0.2 {
		return true
	}
	return r.PowerTarget > 0 && relDev(r.TruePowerW, r.PowerTarget) > 0.2
}

// innovationTrend returns (growth, p): growth is the ratio of the
// largest to the smallest octile mean |innovation| (normalized by the
// targets), p the worst-channel Ljung–Box p-value over the recording.
func innovationTrend(recs []flightrec.Record) (growth, p float64) {
	growth, p = 1, 1
	for ch := 0; ch < 2; ch++ {
		xs := make([]float64, 0, len(recs))
		for _, r := range recs {
			v, scale := r.InnovIPS, r.IPSTarget
			if ch == 1 {
				v, scale = r.InnovPowerW, r.PowerTarget
			}
			if scale <= 0 {
				scale = 1
			}
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v/scale)
			}
		}
		if len(xs) < 64 {
			continue
		}
		if v := ljungBoxP(xs, 8); v < p {
			p = v
		}
		oct := len(xs) / 8
		lo, hi := math.Inf(1), 0.0
		for o := 0; o < 8; o++ {
			sum := 0.0
			for _, v := range xs[o*oct : (o+1)*oct] {
				sum += math.Abs(v)
			}
			m := sum / float64(oct)
			if m < lo {
				lo = m
			}
			if m > hi {
				hi = m
			}
		}
		if lo < 1e-12 {
			lo = 1e-12
		}
		if g := hi / lo; g > growth {
			growth = g
		}
	}
	return growth, p
}

func clamp01(v float64) float64 {
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// WriteReport renders a human-readable diagnosis, shared by
// cmd/mimodoctor and `mimotrace explain`.
func WriteReport(w io.Writer, meta flightrec.Meta, d *Diagnosis) {
	fmt.Fprintf(w, "flight recording: arch=%s workload=%s fault=%s seed=%d epochs=%d (%d records examined)\n",
		orUnknown(meta.Arch), orUnknown(meta.Workload), orUnknown(meta.FaultClass), meta.Seed, meta.Epochs, d.Records)
	if meta.TargetIPS > 0 || meta.TargetPowerW > 0 {
		fmt.Fprintf(w, "targets: %.3g BIPS, %.3g W\n", meta.TargetIPS, meta.TargetPowerW)
	}
	if meta.Reason != "" {
		fmt.Fprintf(w, "dump trigger: %s\n", meta.Reason)
	}
	fmt.Fprintf(w, "\ndiagnosis (ranked):\n")
	for i, v := range d.Verdicts {
		marker := "  "
		if i == 0 {
			marker = "->"
		}
		fmt.Fprintf(w, "%s %-22s %5.2f  %s\n", marker, v.Cause, v.Score, v.Evidence)
	}
}

func orUnknown(s string) string {
	if s == "" {
		return "?"
	}
	return s
}
