package health

import (
	"math"
	"strings"
	"testing"

	"mimoctl/internal/lti"
	"mimoctl/internal/mat"
)

// feedWhite drives n small, white-ish innovations through m.
func feedWhite(t *testing.T, m *Monitor, n int, amp float64) {
	t.Helper()
	g := lcg(7)
	for i := 0; i < n; i++ {
		m.Observe(amp*g.gaussish(), amp*g.gaussish())
	}
}

func TestMonitorHealthyStaysOK(t *testing.T) {
	m := NewMonitor(Options{Window: 128, EvalEvery: 32, Lags: 4})
	feedWhite(t, m, 512, 0.02)
	s := m.Snapshot()
	if s.Level != LevelOK {
		t.Fatalf("level = %v (%s), want ok", s.Level, s.Detail)
	}
	if s.WhitenessP < 1e-3 {
		t.Errorf("whiteness p = %g for white innovations", s.WhitenessP)
	}
	if s.GuardbandConsumption > 0.2 {
		t.Errorf("consumption = %.2f for tiny innovations", s.GuardbandConsumption)
	}
	if !math.IsNaN(s.StabilityMargin) {
		t.Errorf("margin = %v without a plant model, want NaN", s.StabilityMargin)
	}
	if s.Observations != 512 {
		t.Errorf("observations = %d, want 512", s.Observations)
	}
}

func TestMonitorWhitenessTransition(t *testing.T) {
	m := NewMonitor(Options{Window: 128, EvalEvery: 32, Lags: 4})
	// A strongly periodic innovation: the Kalman model is missing
	// dynamics. Amplitude kept small so consumption cannot trip first.
	for i := 0; i < 512; i++ {
		m.Observe(0.05*math.Sin(2*math.Pi*float64(i)/16), 0.0)
	}
	s := m.Snapshot()
	if s.Level != LevelFail {
		t.Fatalf("level = %v (%s), want fail", s.Level, s.Detail)
	}
	if !strings.Contains(s.Detail, "not white") {
		t.Errorf("detail %q does not name whiteness", s.Detail)
	}
}

func TestMonitorConsumptionTransitions(t *testing.T) {
	// |normalized innovation| ≈ 0.45 of the 0.50 IPS guardband → 90%
	// consumption → warn; 0.55 → 110% → fail. Random signs keep the
	// sequence white so the whiteness test cannot trip instead.
	for _, tc := range []struct {
		mag   float64
		level Level
		want  string
	}{
		{0.45 * 2.5, LevelWarn, "guardband consumption"},
		{0.55 * 2.5, LevelFail, "guardband exhausted"},
	} {
		m := NewMonitor(Options{Window: 128, EvalEvery: 32, Lags: 4})
		g := lcg(3)
		for i := 0; i < 1024; i++ {
			sign := 1.0
			if g.next() < 0 {
				sign = -1
			}
			m.Observe(sign*tc.mag, 0)
		}
		s := m.Snapshot()
		if s.Level != tc.level {
			t.Errorf("mag %.2f: level = %v (%s), want %v", tc.mag, s.Level, s.Detail, tc.level)
		}
		if !strings.Contains(s.Detail, tc.want) {
			t.Errorf("mag %.2f: detail %q does not contain %q", tc.mag, s.Detail, tc.want)
		}
	}
}

// toyLoop builds a small stable 2×2 plant/controller pair for the
// margin recompute: a diagonal first-order plant under weak dynamic
// output feedback.
func toyLoop(t *testing.T) (*lti.StateSpace, *lti.StateSpace) {
	t.Helper()
	diag := func(v float64) *mat.Matrix { return mat.Diag(v, v) }
	plant, err := lti.NewStateSpace(diag(0.5), diag(1), diag(1), nil, 50e-6)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := lti.NewStateSpace(diag(0.1), diag(0.1), diag(-0.2), diag(0), 50e-6)
	if err != nil {
		t.Fatal(err)
	}
	return plant, ctrl
}

func TestMonitorMarginRecomputeAndTransitions(t *testing.T) {
	plant, ctrl := toyLoop(t)
	// First learn the loop's actual margin at the design guardbands.
	m := NewMonitor(Options{Window: 128, EvalEvery: 32, Lags: 4,
		Plant: plant, Ctrl: ctrl, RecomputeEvery: 64})
	feedWhite(t, m, 256, 0.02)
	margin := m.Snapshot().StabilityMargin
	if math.IsNaN(margin) || margin <= 0 {
		t.Fatalf("margin was not recomputed: %v", margin)
	}

	// Thresholds placed around the measured value force each verdict.
	for _, tc := range []struct {
		warn, fail float64
		level      Level
	}{
		{margin / 2, margin / 4, LevelOK},
		{margin * 2, margin / 4, LevelWarn},
		{margin * 4, margin * 2, LevelFail},
	} {
		m := NewMonitor(Options{Window: 128, EvalEvery: 32, Lags: 4,
			Plant: plant, Ctrl: ctrl, RecomputeEvery: 64,
			MarginWarn: tc.warn, MarginFail: tc.fail})
		feedWhite(t, m, 256, 0.02)
		if s := m.Snapshot(); s.Level != tc.level {
			t.Errorf("thresholds (%.2f, %.2f): level = %v (%s), want %v",
				tc.warn, tc.fail, s.Level, s.Detail, tc.level)
		}
	}
}

func TestMonitorMarginInflatesWithObservedMismatch(t *testing.T) {
	plant, ctrl := toyLoop(t)
	opts := Options{Window: 128, EvalEvery: 32, Lags: 4,
		Plant: plant, Ctrl: ctrl, RecomputeEvery: 64,
		// Keep consumption/whiteness out of the verdict: this test is
		// about the guardband fed to the recompute.
		ConsumptionWarn: 1e6, ConsumptionFail: 2e6, WhitenessWarn: 1e-300, WhitenessFail: 1e-301}
	small := NewMonitor(opts)
	feedWhite(t, small, 256, 0.02)
	big := NewMonitor(opts)
	feedWhite(t, big, 256, 10.0) // observed mismatch far beyond the design guardband
	ms, mb := small.Snapshot().StabilityMargin, big.Snapshot().StabilityMargin
	if !(mb < ms) {
		t.Fatalf("margin did not shrink when observed mismatch grew: small=%v big=%v", ms, mb)
	}
}

func TestMonitorNonFiniteSamplesSkipped(t *testing.T) {
	m := NewMonitor(Options{Window: 64, EvalEvery: 16, Lags: 4})
	for i := 0; i < 128; i++ {
		m.Observe(math.NaN(), math.Inf(1))
	}
	s := m.Snapshot()
	if s.Observations != 0 || s.Level != LevelOK {
		t.Fatalf("non-finite samples were consumed: %+v", s)
	}
}

func TestNilMonitorIsSafe(t *testing.T) {
	var m *Monitor
	m.Observe(1, 1)
	s := m.Snapshot()
	if s.WhitenessP != 1 || !math.IsNaN(s.StabilityMargin) {
		t.Fatalf("nil monitor snapshot = %+v", s)
	}
}

func TestPublishGlobal(t *testing.T) {
	ResetGlobal()
	t.Cleanup(ResetGlobal)
	if _, ok := Current(); ok {
		t.Fatal("snapshot published before any monitor ran")
	}
	m := NewMonitor(Options{Window: 64, EvalEvery: 16, Lags: 4, Publish: true})
	feedWhite(t, m, 64, 0.02)
	s, ok := Current()
	if !ok {
		t.Fatal("Publish did not surface a global snapshot")
	}
	if s.Observations == 0 {
		t.Fatal("published snapshot is empty")
	}
}
