package health

import (
	"math"
	"testing"
)

func TestChiSquaredSurvivalKnownValues(t *testing.T) {
	// Critical values from standard χ² tables.
	cases := []struct {
		x    float64
		k    int
		want float64
	}{
		{0, 5, 1.0},
		{2, 2, math.Exp(-1)},      // k=2 is exactly exp(-x/2)
		{10, 2, math.Exp(-5)},
		{3.841, 1, 0.05},
		{9.488, 4, 0.05},
		{15.507, 8, 0.05},
		{20.090, 8, 0.01},
	}
	for _, c := range cases {
		got := chiSquaredSurvival(c.x, c.k)
		if math.Abs(got-c.want) > 2e-3 {
			t.Errorf("chiSquaredSurvival(%.3f, %d) = %.5f, want %.5f", c.x, c.k, got, c.want)
		}
	}
}

func TestChiSquaredSurvivalMonotone(t *testing.T) {
	prev := 1.1
	for x := 0.0; x <= 40; x += 0.5 {
		p := chiSquaredSurvival(x, 8)
		if p < 0 || p > 1 {
			t.Fatalf("p(%.1f) = %g out of [0,1]", x, p)
		}
		if p > prev+1e-12 {
			t.Fatalf("survival not monotone at x=%.1f: %g > %g", x, p, prev)
		}
		prev = p
	}
}

// lcg is a tiny deterministic generator for test noise (the package
// under test must not depend on math/rand behaviour).
type lcg uint64

func (l *lcg) next() float64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	// Map the top bits to (-0.5, 0.5); sums of 4 approximate a Gaussian.
	return float64(int64(*l>>11))/float64(1<<53) - 0.5
}

func (l *lcg) gaussish() float64 {
	return l.next() + l.next() + l.next() + l.next()
}

func TestLjungBoxWhiteVsCorrelated(t *testing.T) {
	g := lcg(1)
	white := make([]float64, 512)
	for i := range white {
		white[i] = g.gaussish()
	}
	if p := ljungBoxP(white, 8); p < 1e-3 {
		t.Errorf("white noise rejected: p = %g", p)
	}

	correlated := make([]float64, 512)
	for i := range correlated {
		correlated[i] = math.Sin(2*math.Pi*float64(i)/16) + 0.01*g.gaussish()
	}
	if p := ljungBoxP(correlated, 8); p > 1e-8 {
		t.Errorf("strongly periodic series accepted: p = %g", p)
	}
}

func TestLjungBoxDegenerateInputs(t *testing.T) {
	if p := ljungBoxP([]float64{1, 2, 3}, 8); p != 1 {
		t.Errorf("short series: p = %g, want 1", p)
	}
	if p := ljungBoxP(make([]float64, 64), 8); p != 1 {
		t.Errorf("constant series: p = %g, want 1", p)
	}
}
