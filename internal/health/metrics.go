package health

import (
	"sync/atomic"

	"mimoctl/internal/telemetry"
)

// Telemetry binding for the model-health monitors, following the
// repo-wide pattern: a process-level atomic binding installed by
// SetTelemetry, re-read at publish time, nil meaning uninstrumented.

type healthMetrics struct {
	whitenessIPS    telemetry.Gauge
	whitenessPower  telemetry.Gauge
	consumptionIPS  telemetry.Gauge
	consumptionPow  telemetry.Gauge
	stabilityMargin telemetry.Gauge
	level           telemetry.Gauge
}

var healthTel atomic.Pointer[healthMetrics]

// SetTelemetry binds the health layer to a metrics registry. Pass nil
// to disable instrumentation.
func SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		healthTel.Store(nil)
		return
	}
	m := &healthMetrics{
		whitenessIPS:    reg.Gauge("health_whiteness_pvalue", "Ljung-Box innovation whiteness p-value", telemetry.L("channel", "ips")),
		whitenessPower:  reg.Gauge("health_whiteness_pvalue", "Ljung-Box innovation whiteness p-value", telemetry.L("channel", "power")),
		consumptionIPS:  reg.Gauge("health_guardband_consumption", "EMA innovation magnitude over the design guardband", telemetry.L("channel", "ips")),
		consumptionPow:  reg.Gauge("health_guardband_consumption", "EMA innovation magnitude over the design guardband", telemetry.L("channel", "power")),
		stabilityMargin: reg.Gauge("health_stability_margin", "small-gain margin recomputed with the observed guardband"),
		level:           reg.Gauge("health_level", "combined model-health verdict (0 ok, 1 warn, 2 fail)"),
	}
	healthTel.Store(m)
}

// publish mirrors one evaluation into the gauges. The per-channel
// whiteness gauges both receive the combined (minimum) p-value: the
// verdict is per-loop, the labels keep the family shape stable if a
// per-channel split is wanted later.
func (t *healthMetrics) publish(s Snapshot, cons [2]float64) {
	t.whitenessIPS.Set(s.WhitenessP)
	t.whitenessPower.Set(s.WhitenessP)
	t.consumptionIPS.Set(cons[0])
	t.consumptionPow.Set(cons[1])
	t.stabilityMargin.Set(s.StabilityMargin)
	t.level.Set(float64(s.Level))
}
