// Package health implements online model-health monitoring for the
// deployed MIMO controller and offline root-cause diagnosis of flight
// recordings.
//
// The paper's design flow validates the model, pads it with an
// uncertainty guardband, and proves small-gain robust stability before
// deployment (§IV-B, Fig. 3). Those certificates are conditional: they
// hold while the real plant stays inside the guardband. This package
// watches the conditions at runtime:
//
//   - innovation whiteness (Ljung–Box): a correct Kalman model leaves a
//     white innovation sequence; autocorrelation means model drift;
//   - guardband consumption: the running innovation magnitude relative
//     to each output's design guardband — how much of the certified
//     uncertainty budget the live mismatch is already spending;
//   - robust-stability margin: the small-gain margin 1/‖W·M‖∞
//     periodically recomputed with the guardband inflated to the
//     observed mismatch, so the certificate is re-checked against
//     reality instead of the design assumption.
//
// Monitor streams these from the control loop; Diagnose (diagnose.go)
// applies the same statistics to a flight-recorder dump after the fact.
package health

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"mimoctl/internal/lti"
	"mimoctl/internal/robust"
)

// Level is the monitor's verdict ladder.
type Level int32

const (
	LevelOK Level = iota
	LevelWarn
	LevelFail
)

// String returns "ok", "warn", or "fail".
func (l Level) String() string {
	switch l {
	case LevelWarn:
		return "warn"
	case LevelFail:
		return "fail"
	default:
		return "ok"
	}
}

// Options tunes the monitor. Zero values select the defaults, which
// mirror the paper's operating point (targets 2.5 BIPS / 2.0 W as the
// normalization scales, guardbands 50% IPS / 30% power from §VI-A2).
type Options struct {
	// Window is the sliding-window length for the whiteness test
	// (default 256 observations).
	Window int
	// Lags is the number of Ljung–Box autocorrelation lags (default 8).
	Lags int
	// EvalEvery re-runs the whiteness test every this many observations
	// (default 64): the test is O(Window·Lags), too heavy per epoch.
	EvalEvery int
	// IPSScale / PowerScale normalize the innovation channels (defaults
	// 2.5 BIPS, 2.0 W — the paper's targets).
	IPSScale, PowerScale float64
	// IPSGuardband / PowerGuardband are the design guardbands the
	// consumption gauge is measured against (defaults 0.50, 0.30).
	IPSGuardband, PowerGuardband float64
	// ConsumptionAlpha is the EMA coefficient of the running innovation
	// magnitude (default 0.02 ≈ 50-epoch memory).
	ConsumptionAlpha float64
	// Whiteness p-value thresholds (defaults: warn below 1e-2, fail
	// below 1e-4). A negative threshold disables that check: a
	// quantized-actuation loop's innovation is never white even when
	// healthy (the quantizer injects correlated disturbance), so
	// deployments on coarse knob grids gate on consumption alone.
	WhitenessWarn, WhitenessFail float64
	// Guardband-consumption thresholds (defaults: warn at 0.8, fail at
	// 1.0 — the observed mismatch has eaten the certified budget).
	ConsumptionWarn, ConsumptionFail float64
	// Stability-margin thresholds (defaults: warn below 1.2, fail below
	// 1.0 — the recomputed small-gain certificate no longer holds).
	MarginWarn, MarginFail float64
	// Plant and Ctrl, when both set, enable the periodic margin
	// recompute via robust.Analyze with the guardband inflated to the
	// observed consumption.
	Plant, Ctrl *lti.StateSpace
	// RecomputeEvery is the margin recompute period in observations
	// (default 2048; the analysis walks a 512-point frequency grid).
	RecomputeEvery int
	// Publish mirrors every evaluation into the package-level snapshot
	// consumed by supervisor.Healthz.
	Publish bool
}

func (o Options) withDefaults() Options {
	if o.Window <= 0 {
		o.Window = 256
	}
	if o.Lags <= 0 {
		o.Lags = 8
	}
	if o.EvalEvery <= 0 {
		o.EvalEvery = 64
	}
	if o.IPSScale <= 0 {
		o.IPSScale = 2.5
	}
	if o.PowerScale <= 0 {
		o.PowerScale = 2.0
	}
	if o.IPSGuardband <= 0 {
		o.IPSGuardband = 0.50
	}
	if o.PowerGuardband <= 0 {
		o.PowerGuardband = 0.30
	}
	if o.ConsumptionAlpha <= 0 || o.ConsumptionAlpha > 1 {
		o.ConsumptionAlpha = 0.02
	}
	if o.WhitenessWarn == 0 {
		o.WhitenessWarn = 1e-2
	}
	if o.WhitenessFail == 0 {
		o.WhitenessFail = 1e-4
	}
	if o.ConsumptionWarn <= 0 {
		o.ConsumptionWarn = 0.8
	}
	if o.ConsumptionFail <= 0 {
		o.ConsumptionFail = 1.0
	}
	if o.MarginWarn <= 0 {
		o.MarginWarn = 1.2
	}
	if o.MarginFail <= 0 {
		o.MarginFail = 1.0
	}
	if o.RecomputeEvery <= 0 {
		o.RecomputeEvery = 2048
	}
	return o
}

// Snapshot is one evaluation of the three monitors.
type Snapshot struct {
	// WhitenessP is the worst (minimum) Ljung–Box p-value across the
	// innovation channels; 1 until the window has enough samples.
	WhitenessP float64
	// GuardbandConsumption is the worst channel's EMA |innovation| /
	// (scale × guardband): 1.0 means the live mismatch equals the
	// certified uncertainty budget.
	GuardbandConsumption float64
	// StabilityMargin is 1/‖W·M‖∞ from the most recent recompute with
	// the observed guardband (NaN before the first recompute or when no
	// plant/controller model was provided).
	StabilityMargin float64
	// Level is the combined verdict; Detail names the worst offender.
	Level  Level
	Detail string
	// Observations counts innovations consumed.
	Observations uint64
}

// Monitor streams innovation samples from the control loop and
// maintains the three health figures. Observe is cheap (two ring writes
// and two EMA updates); the whiteness test and margin recompute run on
// the configured periods. A nil *Monitor is valid and ignores all
// calls, so callers can wire it unconditionally.
type Monitor struct {
	mu   sync.Mutex
	opts Options

	ring  [2][]float64 // normalized innovations, ring order
	next  int
	count int
	n     uint64
	ema   [2]float64 // EMA of |normalized innovation| per channel

	whiteP float64
	margin float64
	level  Level
	detail string

	ordered []float64 // scratch: window in chronological order
}

// NewMonitor builds a monitor with the given options.
func NewMonitor(opts Options) *Monitor {
	o := opts.withDefaults()
	m := &Monitor{opts: o, whiteP: 1, margin: math.NaN()}
	m.ring[0] = make([]float64, o.Window)
	m.ring[1] = make([]float64, o.Window)
	m.ordered = make([]float64, o.Window)
	m.detail = "model health ok"
	return m
}

// Observe consumes one epoch's Kalman innovation in absolute output
// units (BIPS, watts). Non-finite samples are skipped: faulted sensor
// epochs are sanitized upstream, and a NaN would poison every running
// statistic.
func (m *Monitor) Observe(innovIPS, innovPowerW float64) {
	if m == nil {
		return
	}
	ni := innovIPS / m.opts.IPSScale
	np := innovPowerW / m.opts.PowerScale
	if math.IsNaN(ni) || math.IsInf(ni, 0) || math.IsNaN(np) || math.IsInf(np, 0) {
		return
	}
	m.mu.Lock()
	m.ring[0][m.next] = ni
	m.ring[1][m.next] = np
	m.next++
	if m.next == len(m.ring[0]) {
		m.next = 0
	}
	if m.count < len(m.ring[0]) {
		m.count++
	}
	a := m.opts.ConsumptionAlpha
	m.ema[0] += a * (math.Abs(ni) - m.ema[0])
	m.ema[1] += a * (math.Abs(np) - m.ema[1])
	m.n++
	evalDue := m.n%uint64(m.opts.EvalEvery) == 0
	marginDue := m.opts.Plant != nil && m.opts.Ctrl != nil && m.n%uint64(m.opts.RecomputeEvery) == 0
	if marginDue {
		m.recomputeMarginLocked()
	}
	if evalDue || marginDue {
		m.evaluateLocked()
	}
	m.mu.Unlock()
}

// window copies channel ch of the ring into m.ordered chronologically.
func (m *Monitor) window(ch int) []float64 {
	out := m.ordered[:m.count]
	start := m.next - m.count
	if start < 0 {
		start += len(m.ring[ch])
	}
	n := copy(out, m.ring[ch][start:])
	copy(out[n:], m.ring[ch][:m.count-n])
	return out
}

// recomputeMarginLocked re-runs the small-gain analysis with each
// guardband inflated to the observed consumption: the certificate is
// only as good as the uncertainty bound, so once the live mismatch
// exceeds the design guardband the margin must be re-derived against
// what the plant is actually doing.
func (m *Monitor) recomputeMarginLocked() {
	gb := [2]float64{
		math.Max(m.opts.IPSGuardband, m.ema[0]),
		math.Max(m.opts.PowerGuardband, m.ema[1]),
	}
	rep, err := robust.Analyze(m.opts.Plant, m.opts.Ctrl, gb[:])
	if err != nil {
		return // keep the previous margin; the models did not change
	}
	if !rep.NominallyStable {
		m.margin = 0
		return
	}
	m.margin = rep.Margin
}

// evaluateLocked refreshes the whiteness p-value, folds the three
// figures into a Level, and publishes.
func (m *Monitor) evaluateLocked() {
	o := m.opts
	p := 1.0
	if m.count >= o.Lags+2 {
		for ch := 0; ch < 2; ch++ {
			if v := ljungBoxP(m.window(ch), o.Lags); v < p {
				p = v
			}
		}
	}
	m.whiteP = p
	cons := m.consumptionLocked()
	level, detail := LevelOK, "model health ok"
	check := func(l Level, d string) {
		if l > level {
			level, detail = l, d
		}
	}
	if o.WhitenessFail > 0 && p < o.WhitenessFail {
		check(LevelFail, fmt.Sprintf("innovation not white (Ljung-Box p=%.2g)", p))
	} else if o.WhitenessWarn > 0 && p < o.WhitenessWarn {
		check(LevelWarn, fmt.Sprintf("innovation whiteness degraded (Ljung-Box p=%.2g)", p))
	}
	if cons >= o.ConsumptionFail {
		check(LevelFail, fmt.Sprintf("guardband exhausted (consumption %.0f%%)", cons*100))
	} else if cons >= o.ConsumptionWarn {
		check(LevelWarn, fmt.Sprintf("guardband consumption %.0f%%", cons*100))
	}
	if !math.IsNaN(m.margin) {
		if m.margin < o.MarginFail {
			check(LevelFail, fmt.Sprintf("small-gain certificate lost (margin %.2f)", m.margin))
		} else if m.margin < o.MarginWarn {
			check(LevelWarn, fmt.Sprintf("stability margin thin (%.2f)", m.margin))
		}
	}
	m.level, m.detail = level, detail
	snap := m.snapshotLocked()
	if tel := healthTel.Load(); tel != nil {
		tel.publish(snap, [2]float64{m.ema[0] / o.IPSGuardband, m.ema[1] / o.PowerGuardband})
	}
	if o.Publish {
		publishGlobal(snap)
	}
}

// consumptionLocked returns the worst channel's budget consumption.
func (m *Monitor) consumptionLocked() float64 {
	c0 := m.ema[0] / m.opts.IPSGuardband
	c1 := m.ema[1] / m.opts.PowerGuardband
	return math.Max(c0, c1)
}

func (m *Monitor) snapshotLocked() Snapshot {
	return Snapshot{
		WhitenessP:           m.whiteP,
		GuardbandConsumption: m.consumptionLocked(),
		StabilityMargin:      m.margin,
		Level:                m.level,
		Detail:               m.detail,
		Observations:         m.n,
	}
}

// ObservedMismatch returns the per-channel EMA of the normalized
// innovation magnitude — the live model/plant mismatch in the same
// units as the design guardbands. The adaptation loop verifies a
// re-identified candidate against guardbands inflated to these values:
// a swap is only trusted when the new design would survive the mismatch
// actually observed, not just the one assumed at design time. A nil
// monitor reports zero mismatch.
func (m *Monitor) ObservedMismatch() (ips, power float64) {
	if m == nil {
		return 0, 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ema[0], m.ema[1]
}

// Rebase re-points the margin recompute at a new plant/controller pair
// and clears every running statistic. The adaptation loop calls it
// after a hot swap: the ring and EMAs describe the old model's
// innovations, and left in place they would immediately re-trigger the
// very drift alarm the swap just resolved. Passing nil models disables
// the margin recompute.
func (m *Monitor) Rebase(plant, ctrl *lti.StateSpace) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.opts.Plant, m.opts.Ctrl = plant, ctrl
	for i := range m.ring[0] {
		m.ring[0][i] = 0
		m.ring[1][i] = 0
	}
	m.next, m.count = 0, 0
	m.ema = [2]float64{}
	m.whiteP = 1
	m.margin = math.NaN()
	m.level, m.detail = LevelOK, "model health ok (rebased)"
}

// Snapshot returns the most recent evaluation.
// Level returns the current combined verdict without copying the full
// snapshot — cheap enough for a per-epoch supervisor check.
func (m *Monitor) Level() Level {
	if m == nil {
		return LevelOK
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.level
}

func (m *Monitor) Snapshot() Snapshot {
	if m == nil {
		return Snapshot{WhitenessP: 1, StabilityMargin: math.NaN(), Detail: "no monitor"}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.snapshotLocked()
}

// current is the process-wide snapshot supervisor.Healthz consults.
var current atomic.Pointer[Snapshot]

func publishGlobal(s Snapshot) { current.Store(&s) }

// Current returns the most recently published snapshot (from a Monitor
// with Options.Publish set); ok is false when none was published.
func Current() (Snapshot, bool) {
	p := current.Load()
	if p == nil {
		return Snapshot{}, false
	}
	return *p, true
}

// ResetGlobal clears the published snapshot (tests).
func ResetGlobal() { current.Store(nil) }
