package sysid

import (
	"errors"
	"fmt"
	"math"

	"mimoctl/internal/lti"
	"mimoctl/internal/mat"
)

// Subspace identification (PO-MOESP family): an alternative to the ARX
// least-squares route that estimates the state-space matrices directly
// from the column space of a projected block-Hankel matrix. MATLAB's
// n4sid — part of the toolbox the paper uses — is the canonical
// implementation of this family.
//
// The implementation uses the numerically standard LQ route: one QR
// factorization of the stacked, transposed data matrices replaces the
// huge explicit projections.

// SubspaceOptions configures FitSubspace.
type SubspaceOptions struct {
	// Order is the desired state dimension n.
	Order int
	// Horizon is the block-Hankel depth i; it must exceed Order/outputs.
	// Zero selects Order + 2.
	Horizon int
	// Direct includes a feed-through D term. The architectural control
	// pipeline uses Direct == false (the controller requires D = 0).
	Direct bool
}

// FitSubspace identifies a state-space model of the requested order
// from a (detrended internally) input/output record.
func FitSubspace(d *Data, opts SubspaceOptions) (*Model, error) {
	if opts.Order < 1 {
		return nil, errors.New("sysid: subspace order must be >= 1")
	}
	det, off := Detrend(d)
	m := det.U.Cols()
	l := det.Y.Cols()
	n := opts.Order
	i := opts.Horizon
	if i == 0 {
		i = n + 2
	}
	if i*l < n+l {
		i = (n + l + l - 1) / l // ensure il > n so the shift equation is solvable
	}
	t := det.Samples()
	j := t - 2*i + 1
	rows := 2*i*m + 2*i*l
	if j < 4*rows {
		return nil, fmt.Errorf("sysid: record too short for subspace identification (need > %d samples)", 8*i*rows/4)
	}

	// Block-Hankel matrices, stacked as rows of H:
	//   [U_f; U_p; Y_p; Y_f]  with each block i x (m or l) block-rows.
	uf := hankelBlock(det.U, i, i, j) // future inputs
	up := hankelBlock(det.U, 0, i, j) // past inputs
	yp := hankelBlock(det.Y, 0, i, j) // past outputs
	yf := hankelBlock(det.Y, i, i, j) // future outputs
	h := mat.VStack(uf, up, yp, yf)

	// LQ factorization via QR of the transpose: H = L Qᵀ.
	qr, err := mat.FactorQR(h.T())
	if err != nil {
		return nil, fmt.Errorf("sysid: LQ factorization: %w", err)
	}
	lfac := qr.R().T() // lower triangular, rows x rows

	// Row partitions of L.
	r1 := i * m        // U_f
	r2 := r1 + i*(m+l) // W_p = [U_p; Y_p]
	r3 := r2 + i*l     // Y_f
	// L32: Y_f block against the W_p columns — its column space spans
	// the extended observability matrix Γ_i (PO-MOESP).
	l32 := lfac.Slice(r2, r3, r1, r2)
	svd, err := mat.FactorSVD(l32)
	if err != nil {
		return nil, err
	}
	if len(svd.S) < n || svd.S[n-1] <= 0 || svd.S[n-1] < svd.S[0]*excitationCondTol {
		// The observability subspace is not excited down to the requested
		// order: either the record is feedback-dominated (closed-loop
		// collapse) or the true plant is simpler than asked for.
		return nil, fmt.Errorf("sysid: data does not support order %d: %w", n, ErrInsufficientExcitation)
	}
	// Γ_i = U1 * S1^(1/2).
	gamma := mat.New(i*l, n)
	for c := 0; c < n; c++ {
		scale := sqrtf(svd.S[c])
		for r := 0; r < i*l; r++ {
			gamma.Set(r, c, svd.U.At(r, c)*scale)
		}
	}
	// C is the first block row; A from the shift equation
	// Γ_up A = Γ_down.
	cMat := gamma.Slice(0, l, 0, n)
	gUp := gamma.Slice(0, (i-1)*l, 0, n)
	gDown := gamma.Slice(l, i*l, 0, n)
	aMat, err := mat.LeastSquares(gUp, gDown)
	if err != nil {
		return nil, fmt.Errorf("sysid: shift equation: %w", err)
	}

	// B (and D, x0) by linear regression: with A, C fixed, the output is
	// linear in (x0, B, D).
	bMat, dMat, err := solveBD(det, aMat, cMat, opts.Direct)
	if err != nil {
		return nil, err
	}
	ss, err := lti.NewStateSpace(aMat, bMat, cMat, dMat, d.Ts)
	if err != nil {
		return nil, err
	}
	model := &Model{
		SS:     ss,
		Off:    off,
		Orders: ARXOrders{NA: i, NB: i, Direct: opts.Direct},
	}
	// Noise covariances from one-step residuals of a Kalman-style
	// innovation fit: use the simulation residuals as a conservative V,
	// and map them into the state through the observability pinv as K.
	if err := estimateSubspaceNoise(model, det); err != nil {
		return nil, err
	}
	return model, nil
}

// hankelBlock builds the block-Hankel matrix with blockRows block rows
// starting at sample `start`, with j columns: row-block r, column c
// holds the sample at start + r + c.
func hankelBlock(data *mat.Matrix, start, blockRows, j int) *mat.Matrix {
	w := data.Cols()
	out := mat.New(blockRows*w, j)
	for r := 0; r < blockRows; r++ {
		for c := 0; c < j; c++ {
			row := data.RowView(start + r + c) // read-only view: no per-cell copy
			for k := 0; k < w; k++ {
				out.Set(r*w+k, c, row[k])
			}
		}
	}
	return out
}

// solveBD regresses the record on the (x0, B, D) parameters with A and
// C fixed.
func solveBD(d *Data, a, c *mat.Matrix, direct bool) (b, dm *mat.Matrix, err error) {
	t := d.Samples()
	n := a.Rows()
	m := d.U.Cols()
	l := d.Y.Cols()
	// Unknown vector θ = [x0 (n); vec(B) (n*m, column-major by input);
	// vec(D) (l*m) if direct].
	cols := n + n*m
	if direct {
		cols += l * m
	}
	// Precompute C A^t via iteration; phiX[t] = C A^t (l x n).
	phi := mat.New(t*l, cols)
	tgt := mat.New(t*l, 1)
	cat := c.Clone() // C A^k, starting k=0
	// For the B columns we need s(t, τ) = C A^(t-τ-1) for τ < t; build
	// incrementally: for each t, the contribution of u(τ) is
	// C A^(t-τ-1) B u(τ). Maintain z_j(t) = Σ_τ A^(t-τ-1) e_j-weighted
	// input states... Simpler: simulate n*m single-entry-B systems is
	// O(n²·m·t); with n,m ≤ 8 this is cheap.
	// zState[j*n + e] holds the state of the system driven by input j
	// through unit B entry e.
	zState := make([][]float64, n*m)
	for idx := range zState {
		zState[idx] = make([]float64, n)
	}
	zNext := make([]float64, n)     // scratch for the state advance
	catNext := mat.New(l, a.Cols()) // scratch for the C A^k advance
	for k := 0; k < t; k++ {
		uk := d.U.RowView(k)
		yk := d.Y.RowView(k)
		for li := 0; li < l; li++ {
			row := k*l + li
			tgt.Set(row, 0, yk[li])
			// x0 columns: C A^k.
			for e := 0; e < n; e++ {
				phi.Set(row, e, cat.At(li, e))
			}
			// B columns: C * zState.
			for j := 0; j < m; j++ {
				for e := 0; e < n; e++ {
					var s float64
					for q := 0; q < n; q++ {
						s += c.At(li, q) * zState[j*n+e][q]
					}
					phi.Set(row, n+j*n+e, s)
				}
			}
			if direct {
				for j := 0; j < m; j++ {
					phi.Set(row, n+n*m+li*m+j, uk[j])
				}
			}
		}
		// Advance: zState ← A zState + e_e * u_j(k); cat ← cat * A.
		// Ping-pong through the scratch buffers: same arithmetic as the
		// allocating form, no per-step garbage.
		for j := 0; j < m; j++ {
			for e := 0; e < n; e++ {
				z := zState[j*n+e]
				mat.MulVecInto(zNext, a, z)
				zNext[e] += uk[j]
				copy(z, zNext)
			}
		}
		mat.MulInto(catNext, cat, a)
		cat, catNext = catNext, cat
	}
	theta, err := mat.LeastSquares(phi, tgt)
	if err != nil {
		return nil, nil, fmt.Errorf("sysid: B/D regression: %w", err)
	}
	b = mat.New(n, m)
	for j := 0; j < m; j++ {
		for e := 0; e < n; e++ {
			b.Set(e, j, theta.At(n+j*n+e, 0))
		}
	}
	dm = mat.New(l, m)
	if direct {
		for li := 0; li < l; li++ {
			for j := 0; j < m; j++ {
				dm.Set(li, j, theta.At(n+n*m+li*m+j, 0))
			}
		}
	}
	return b, dm, nil
}

// estimateSubspaceNoise fills V, K, W from simulation residuals.
func estimateSubspaceNoise(model *Model, det *Data) error {
	t := det.Samples()
	l := det.Y.Cols()
	pred, err := model.SS.Simulate(make([]float64, model.SS.Order()), det.U)
	if err != nil {
		return err
	}
	v := mat.New(l, l)
	for k := 0; k < t; k++ {
		for i := 0; i < l; i++ {
			for j := 0; j < l; j++ {
				v.Set(i, j, v.At(i, j)+(det.Y.At(k, i)-pred.At(k, i))*(det.Y.At(k, j)-pred.At(k, j)))
			}
		}
	}
	model.V = mat.Scale(1/float64(t), v)
	// Conservative innovation gain: route residuals through the
	// pseudo-inverse of C.
	cPinv, err := mat.PInv(model.SS.C)
	if err != nil {
		return err
	}
	model.K = cPinv
	model.W = mat.Symmetrize(mat.MulChain(model.K, model.V, model.K.T()))
	return nil
}

func sqrtf(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
