// Package sysid implements black-box system identification in the style
// the paper uses MATLAB's System Identification Toolbox for (§IV-B1,
// §VI-A2): design excitation waveforms for the plant inputs, record the
// output waveforms, fit a multivariable ARX model by least squares,
// realize it as a state-space model, and estimate the unpredictability
// (noise) matrices from the residuals.
package sysid

import (
	"errors"
	"fmt"
	"math"

	"mimoctl/internal/lti"
	"mimoctl/internal/mat"
)

// ErrInsufficientExcitation reports that an identification record does
// not excite the plant richly enough to determine the requested model:
// the regression matrix is rank-deficient (or numerically close to it).
// This is the expected failure mode of closed-loop windows — a
// well-regulated plant sits at one operating point, so the regressor
// columns collapse — and callers (the online re-identification loop in
// internal/adapt) branch on it to request dither rather than accept a
// silently bad fit.
var ErrInsufficientExcitation = errors.New("sysid: insufficient excitation (rank-deficient regressor)")

// excitationCondTol is the relative threshold on the QR R-diagonal
// below which a regressor column is considered unexcited. It is looser
// than mat.(*QR).FullRank's 1e-12 machine-rank test on purpose: a
// column that is six orders of magnitude weaker than its peers is
// numerically present but statistically meaningless, and a fit through
// it amplifies noise into the coefficients.
const excitationCondTol = 1e-9

// checkExcitation returns ErrInsufficientExcitation when the R factor of
// the regression QR has a (relatively) negligible diagonal entry.
func checkExcitation(f *mat.QR) error {
	if !f.FullRank() {
		return ErrInsufficientExcitation
	}
	r := f.R()
	n := r.Rows()
	var mx float64
	for i := 0; i < n; i++ {
		if a := math.Abs(r.At(i, i)); a > mx {
			mx = a
		}
	}
	for i := 0; i < n; i++ {
		if math.Abs(r.At(i, i)) < mx*excitationCondTol {
			return ErrInsufficientExcitation
		}
	}
	return nil
}

// Data holds a sampled input/output record: U is T x I, Y is T x O, and
// Ts is the sample period.
type Data struct {
	U, Y *mat.Matrix
	Ts   float64
}

// NewData validates that U and Y have the same number of samples.
func NewData(u, y *mat.Matrix, ts float64) (*Data, error) {
	if u.Rows() != y.Rows() {
		return nil, fmt.Errorf("sysid: U has %d samples, Y has %d", u.Rows(), y.Rows())
	}
	if ts <= 0 {
		return nil, errors.New("sysid: sample period must be positive")
	}
	return &Data{U: u, Y: y, Ts: ts}, nil
}

// Samples returns the record length.
func (d *Data) Samples() int { return d.U.Rows() }

// Split divides the record into a training prefix holding frac of the
// samples and a validation suffix with the remainder.
func (d *Data) Split(frac float64) (train, val *Data) {
	t := int(float64(d.Samples()) * frac)
	if t < 1 {
		t = 1
	}
	if t >= d.Samples() {
		t = d.Samples() - 1
	}
	train = &Data{U: d.U.Slice(0, t, 0, d.U.Cols()), Y: d.Y.Slice(0, t, 0, d.Y.Cols()), Ts: d.Ts}
	val = &Data{U: d.U.Slice(t, d.Samples(), 0, d.U.Cols()), Y: d.Y.Slice(t, d.Samples(), 0, d.Y.Cols()), Ts: d.Ts}
	return train, val
}

// Offsets records the operating point removed from a record before
// fitting, so the identified model describes deviations around it.
type Offsets struct {
	U0, Y0 []float64
}

// Detrend removes per-channel means from U and Y and returns the
// de-trended record plus the removed operating point.
func Detrend(d *Data) (*Data, Offsets) {
	t := d.Samples()
	u0 := make([]float64, d.U.Cols())
	y0 := make([]float64, d.Y.Cols())
	for j := range u0 {
		var s float64
		for k := 0; k < t; k++ {
			s += d.U.At(k, j)
		}
		u0[j] = s / float64(t)
	}
	for j := range y0 {
		var s float64
		for k := 0; k < t; k++ {
			s += d.Y.At(k, j)
		}
		y0[j] = s / float64(t)
	}
	du := mat.New(t, d.U.Cols())
	dy := mat.New(t, d.Y.Cols())
	for k := 0; k < t; k++ {
		for j := range u0 {
			du.Set(k, j, d.U.At(k, j)-u0[j])
		}
		for j := range y0 {
			dy.Set(k, j, d.Y.At(k, j)-y0[j])
		}
	}
	return &Data{U: du, Y: dy, Ts: d.Ts}, Offsets{U0: u0, Y0: y0}
}

// ApplyOffsets maps absolute inputs/outputs into the deviation
// coordinates of the model.
func (o Offsets) ApplyOffsets(u, y []float64) (du, dy []float64) {
	return mat.VecSub(u, o.U0), mat.VecSub(y, o.Y0)
}

// ARXOrders selects the regression structure: NA past outputs, NB past
// inputs, and whether a direct feed-through term u(t) is included.
// The paper's model (§IV-B1) uses outputs at t-1..t-k and inputs at
// t..t-l+1; Direct=true matches that (l = NB+1 including the current
// input).
type ARXOrders struct {
	NA     int
	NB     int
	Direct bool
}

// Validate checks the orders are usable.
func (o ARXOrders) Validate() error {
	if o.NA < 1 {
		return errors.New("sysid: NA must be >= 1")
	}
	if o.NB < 0 {
		return errors.New("sysid: NB must be >= 0")
	}
	if o.NB == 0 && !o.Direct {
		return errors.New("sysid: model must depend on the input (NB >= 1 or Direct)")
	}
	return nil
}

// StateDim returns the dimension of the state-space realization produced
// by FitARX for these orders.
func (o ARXOrders) StateDim(outputs int) int {
	p := o.NA
	if o.NB > p {
		p = o.NB
	}
	return p * outputs
}

// Model is an identified state-space model in deviation coordinates plus
// its unpredictability description.
type Model struct {
	SS      *lti.StateSpace
	Off     Offsets
	Orders  ARXOrders
	ABlocks []*mat.Matrix // ARX output-regression blocks A_1..A_p (O x O)
	BBlocks []*mat.Matrix // ARX input-regression blocks B_1..B_p (O x I)
	B0      *mat.Matrix   // direct feed-through block (O x I), zero if !Direct

	// V is the measurement-noise covariance (O x O): the covariance of
	// the one-step prediction residuals. This is the paper's sensor-noise
	// unpredictability matrix.
	V *mat.Matrix
	// K is the innovation gain of the realization (N x O): residuals
	// enter the state through K, so the process-noise covariance is
	// W = K V Kᵀ. This is the paper's non-determinism unpredictability
	// matrix.
	K *mat.Matrix
	// W is the process-noise covariance (N x N).
	W *mat.Matrix
}

// FitARX fits the multivariable ARX model
//
//	y(t) = Σ_{i=1..NA} A_i y(t-i) + B_0 u(t) + Σ_{i=1..NB} B_i u(t-i) + e(t)
//
// by linear least squares on a (detrended) record, and realizes it in
// block-observer canonical form:
//
//	x_i(t+1) = A_i y(t) + x_{i+1}(t) + B_i u(t),   y(t) = x_1(t) + B_0 u(t)
//
// The state dimension is p*O with p = max(NA, NB).
func FitARX(d *Data, ord ARXOrders) (*Model, error) {
	if err := ord.Validate(); err != nil {
		return nil, err
	}
	det, off := Detrend(d)
	t := det.Samples()
	nu := det.U.Cols()
	ny := det.Y.Cols()
	p := ord.NA
	if ord.NB > p {
		p = ord.NB
	}
	start := p
	rows := t - start
	nreg := ord.NA*ny + ord.NB*nu
	if ord.Direct {
		nreg += nu
	}
	if rows <= nreg {
		return nil, fmt.Errorf("sysid: %d usable samples for %d regressors; record too short", rows, nreg)
	}
	// Build the regression matrix Φ and target Y.
	phi := mat.New(rows, nreg)
	tgt := mat.New(rows, ny)
	for k := 0; k < rows; k++ {
		tt := start + k
		col := 0
		for i := 1; i <= ord.NA; i++ {
			for j := 0; j < ny; j++ {
				phi.Set(k, col, det.Y.At(tt-i, j))
				col++
			}
		}
		if ord.Direct {
			for j := 0; j < nu; j++ {
				phi.Set(k, col, det.U.At(tt, j))
				col++
			}
		}
		for i := 1; i <= ord.NB; i++ {
			for j := 0; j < nu; j++ {
				phi.Set(k, col, det.U.At(tt-i, j))
				col++
			}
		}
		copy(tgt.RowView(k), det.Y.RowView(tt))
	}
	// Solve the regression explicitly through QR so rank deficiency is a
	// typed error instead of mat.LeastSquares' silent pseudo-inverse
	// fallback (which happily returns the minimum-norm fit of an
	// unexcited record). On well-conditioned data this is the exact code
	// path LeastSquares takes, so the numbers are bit-identical.
	f, err := mat.FactorQR(phi)
	if err != nil {
		return nil, fmt.Errorf("sysid: ARX regression: %w", err)
	}
	if err := checkExcitation(f); err != nil {
		return nil, fmt.Errorf("sysid: ARX regression over %d samples: %w", rows, err)
	}
	theta, err := f.Solve(tgt)
	if err != nil {
		return nil, fmt.Errorf("sysid: ARX regression: %w", err)
	}
	// Unpack coefficient blocks. theta is nreg x ny; coefficients for
	// output o are in column o.
	aBlocks := make([]*mat.Matrix, ord.NA)
	row := 0
	for i := 0; i < ord.NA; i++ {
		blk := mat.New(ny, ny)
		for j := 0; j < ny; j++ {
			for o := 0; o < ny; o++ {
				blk.Set(o, j, theta.At(row+j, o))
			}
		}
		aBlocks[i] = blk
		row += ny
	}
	b0 := mat.New(ny, nu)
	if ord.Direct {
		for j := 0; j < nu; j++ {
			for o := 0; o < ny; o++ {
				b0.Set(o, j, theta.At(row+j, o))
			}
		}
		row += nu
	}
	bBlocks := make([]*mat.Matrix, ord.NB)
	for i := 0; i < ord.NB; i++ {
		blk := mat.New(ny, nu)
		for j := 0; j < nu; j++ {
			for o := 0; o < ny; o++ {
				blk.Set(o, j, theta.At(row+j, o))
			}
		}
		bBlocks[i] = blk
		row += nu
	}
	// Residuals → measurement-noise covariance V.
	pred := mat.Mul(phi, theta)
	resid := mat.Sub(tgt, pred)
	v := mat.New(ny, ny)
	for k := 0; k < rows; k++ {
		for i := 0; i < ny; i++ {
			for j := 0; j < ny; j++ {
				v.Set(i, j, v.At(i, j)+resid.At(k, i)*resid.At(k, j))
			}
		}
	}
	v = mat.Scale(1/float64(rows-nreg), v)

	ss, kGain, err := realizeARX(aBlocks, bBlocks, b0, p, ny, nu, d.Ts)
	if err != nil {
		return nil, err
	}
	w := mat.Symmetrize(mat.MulChain(kGain, v, kGain.T()))
	return &Model{
		SS: ss, Off: off, Orders: ord,
		ABlocks: aBlocks, BBlocks: bBlocks, B0: b0,
		V: v, K: kGain, W: w,
	}, nil
}

// realizeARX builds the block-observer canonical realization. Blocks
// beyond NA or NB are zero.
func realizeARX(aBlocks, bBlocks []*mat.Matrix, b0 *mat.Matrix, p, ny, nu int, ts float64) (*lti.StateSpace, *mat.Matrix, error) {
	n := p * ny
	a := mat.New(n, n)
	b := mat.New(n, nu)
	kGain := mat.New(n, ny)
	for i := 0; i < p; i++ {
		var ai *mat.Matrix
		if i < len(aBlocks) {
			ai = aBlocks[i]
		} else {
			ai = mat.New(ny, ny)
		}
		var bi *mat.Matrix
		if i < len(bBlocks) {
			bi = bBlocks[i]
		} else {
			bi = mat.New(ny, nu)
		}
		// x_i(t+1) = A_i y(t) + x_{i+1}(t) + B_i u(t)
		// With y = x_1 + B_0 u:  A block col 0 gets A_i, B gets B_i + A_i B_0.
		a.SetSubmatrix(i*ny, 0, ai)
		if i+1 < p {
			a.SetSubmatrix(i*ny, (i+1)*ny, mat.Identity(ny))
		}
		b.SetSubmatrix(i*ny, 0, mat.Add(bi, mat.Mul(ai, b0)))
		// Innovations e(t) enter exactly as y(t) does: through A_i.
		kGain.SetSubmatrix(i*ny, 0, ai)
	}
	c := mat.New(ny, n)
	c.SetSubmatrix(0, 0, mat.Identity(ny))
	ss, err := lti.NewStateSpace(a, b, c, b0.Clone(), ts)
	if err != nil {
		return nil, nil, err
	}
	return ss, kGain, nil
}

// ModelFromBlocks realizes a Model from externally estimated ARX
// coefficient blocks — the entry point for estimators that do not run
// the batch regression in FitARX, such as the recursive least-squares
// tracker in internal/adapt. off is the operating point the blocks
// describe deviations around; v is the measurement-noise covariance
// (O x O) estimated alongside the coefficients. b0 may be nil for
// models without direct feed-through.
func ModelFromBlocks(aBlocks, bBlocks []*mat.Matrix, b0 *mat.Matrix, off Offsets, v *mat.Matrix, ts float64) (*Model, error) {
	if len(aBlocks) == 0 {
		return nil, errors.New("sysid: ModelFromBlocks requires at least one A block")
	}
	ny := aBlocks[0].Rows()
	nu := 0
	if len(bBlocks) > 0 {
		nu = bBlocks[0].Cols()
	} else if b0 != nil {
		nu = b0.Cols()
	}
	if nu == 0 {
		return nil, errors.New("sysid: ModelFromBlocks requires input blocks (BBlocks or B0)")
	}
	ord := ARXOrders{NA: len(aBlocks), NB: len(bBlocks), Direct: b0 != nil}
	if err := ord.Validate(); err != nil {
		return nil, err
	}
	if b0 == nil {
		b0 = mat.New(ny, nu)
	}
	if v == nil || v.Rows() != ny || v.Cols() != ny {
		return nil, errors.New("sysid: ModelFromBlocks requires an O x O noise covariance")
	}
	p := ord.NA
	if ord.NB > p {
		p = ord.NB
	}
	ss, kGain, err := realizeARX(aBlocks, bBlocks, b0, p, ny, nu, ts)
	if err != nil {
		return nil, err
	}
	w := mat.Symmetrize(mat.MulChain(kGain, v, kGain.T()))
	return &Model{
		SS: ss, Off: off, Orders: ord,
		ABlocks: aBlocks, BBlocks: bBlocks, B0: b0,
		V: v, K: kGain, W: w,
	}, nil
}

// Predict free-runs the model over the inputs of d (absolute units) from
// a zero deviation state and returns the predicted outputs in absolute
// units. This is "simulation mode" validation: no output feedback.
func (m *Model) Predict(d *Data) (*mat.Matrix, error) {
	if d.U.Cols() != m.SS.Inputs() {
		return nil, fmt.Errorf("sysid: predict input width %d, want %d", d.U.Cols(), m.SS.Inputs())
	}
	t := d.Samples()
	du := mat.New(t, d.U.Cols())
	for k := 0; k < t; k++ {
		for j := 0; j < d.U.Cols(); j++ {
			du.Set(k, j, d.U.At(k, j)-m.Off.U0[j])
		}
	}
	dy, err := m.SS.Simulate(make([]float64, m.SS.Order()), du)
	if err != nil {
		return nil, err
	}
	y := mat.New(t, dy.Cols())
	for k := 0; k < t; k++ {
		for j := 0; j < dy.Cols(); j++ {
			y.Set(k, j, dy.At(k, j)+m.Off.Y0[j])
		}
	}
	return y, nil
}

// OneStepPredict predicts each y(t) from measured past outputs and inputs
// (prediction mode): the standard one-step-ahead ARX predictor.
func (m *Model) OneStepPredict(d *Data) (*mat.Matrix, error) {
	if d.U.Cols() != m.SS.Inputs() || d.Y.Cols() != m.SS.Outputs() {
		return nil, errors.New("sysid: one-step predict dimension mismatch")
	}
	if len(m.ABlocks) == 0 {
		return nil, errors.New("sysid: one-step prediction requires an ARX model (see FitARX); subspace models support Predict only")
	}
	t := d.Samples()
	ny := d.Y.Cols()
	nu := d.U.Cols()
	p := len(m.ABlocks)
	if len(m.BBlocks) > p {
		p = len(m.BBlocks)
	}
	out := mat.New(t, ny)
	// Per-call scratch reused across the time loop: the predictor runs
	// over thousands of samples inside design sweeps, so the inner loop
	// must not allocate.
	yk := make([]float64, ny)
	dy := make([]float64, ny)
	du := make([]float64, nu)
	mv := make([]float64, ny)
	for k := 0; k < t; k++ {
		for i := range yk {
			yk[i] = 0
		}
		for i := 1; i <= len(m.ABlocks); i++ {
			if k-i < 0 {
				continue
			}
			mat.VecSubInto(dy, d.Y.RowView(k-i), m.Off.Y0)
			mat.VecAddInto(yk, yk, mat.MulVecInto(mv, m.ABlocks[i-1], dy))
		}
		mat.VecSubInto(du, d.U.RowView(k), m.Off.U0)
		mat.VecAddInto(yk, yk, mat.MulVecInto(mv, m.B0, du))
		for i := 1; i <= len(m.BBlocks); i++ {
			if k-i < 0 {
				continue
			}
			mat.VecSubInto(du, d.U.RowView(k-i), m.Off.U0)
			mat.VecAddInto(yk, yk, mat.MulVecInto(mv, m.BBlocks[i-1], du))
		}
		mat.VecAddInto(out.RowView(k), yk, m.Off.Y0)
	}
	return out, nil
}
