package sysid

import (
	"errors"
	"math/rand"
	"testing"

	"mimoctl/internal/mat"
)

// constantRecord is the canonical unexcited closed-loop window: the
// regulator holds the plant at one operating point, so every detrended
// regressor column is (near) zero.
func constantRecord(n int, jitter float64, seed int64) *Data {
	rng := rand.New(rand.NewSource(seed))
	u := mat.New(n, 2)
	y := mat.New(n, 2)
	for k := 0; k < n; k++ {
		u.Set(k, 0, 1.2)
		u.Set(k, 1, 3.0)
		y.Set(k, 0, 2.5+jitter*rng.NormFloat64())
		y.Set(k, 1, 2.0+jitter*rng.NormFloat64())
	}
	d, _ := NewData(u, y, 1)
	return d
}

func TestFitARXInsufficientExcitationConstant(t *testing.T) {
	d := constantRecord(400, 0, 30)
	_, err := FitARX(d, ARXOrders{NA: 1, NB: 1, Direct: true})
	if !errors.Is(err, ErrInsufficientExcitation) {
		t.Fatalf("constant record: err = %v, want ErrInsufficientExcitation", err)
	}
}

func TestFitARXInsufficientExcitationNoisyConstant(t *testing.T) {
	// Sensor noise makes the output columns technically full rank, but
	// the input columns stay constant: the conditioning check must still
	// refuse the fit rather than hand back noise-amplified coefficients.
	d := constantRecord(400, 1e-3, 31)
	_, err := FitARX(d, ARXOrders{NA: 1, NB: 1, Direct: true})
	if !errors.Is(err, ErrInsufficientExcitation) {
		t.Fatalf("noisy constant record: err = %v, want ErrInsufficientExcitation", err)
	}
}

func TestFitARXExcitedStillFits(t *testing.T) {
	// Regression guard: the new rank check must not reject a well
	// excited record (same data as TestFitARXRecoversNoiseFree).
	rng := rand.New(rand.NewSource(20))
	d := simulateTruth(rng, 600, 0)
	if _, err := FitARX(d, ARXOrders{NA: 1, NB: 1, Direct: true}); err != nil {
		t.Fatalf("excited record rejected: %v", err)
	}
}

func TestFitSubspaceInsufficientExcitation(t *testing.T) {
	d := constantRecord(800, 0, 32)
	_, err := FitSubspace(d, SubspaceOptions{Order: 2})
	if !errors.Is(err, ErrInsufficientExcitation) {
		t.Fatalf("constant record: err = %v, want ErrInsufficientExcitation", err)
	}
}

func TestModelFromBlocksMatchesFitARX(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	d := simulateTruth(rng, 600, 0.01)
	ref, err := FitARX(d, ARXOrders{NA: 2, NB: 2, Direct: true})
	if err != nil {
		t.Fatal(err)
	}
	m, err := ModelFromBlocks(ref.ABlocks, ref.BBlocks, ref.B0, ref.Off, ref.V, d.Ts)
	if err != nil {
		t.Fatal(err)
	}
	if !m.SS.A.ApproxEqual(ref.SS.A, 0) || !m.SS.B.ApproxEqual(ref.SS.B, 0) ||
		!m.SS.C.ApproxEqual(ref.SS.C, 0) || !m.SS.D.ApproxEqual(ref.SS.D, 0) {
		t.Fatal("ModelFromBlocks realization differs from FitARX")
	}
	if !m.K.ApproxEqual(ref.K, 0) || !m.W.ApproxEqual(ref.W, 0) {
		t.Fatal("ModelFromBlocks noise matrices differ from FitARX")
	}
}

func TestModelFromBlocksValidation(t *testing.T) {
	v := mat.Identity(2)
	if _, err := ModelFromBlocks(nil, nil, nil, Offsets{}, v, 1); err == nil {
		t.Fatal("no A blocks accepted")
	}
	a := []*mat.Matrix{mat.Identity(2)}
	if _, err := ModelFromBlocks(a, nil, nil, Offsets{}, v, 1); err == nil {
		t.Fatal("no input blocks accepted")
	}
	b := []*mat.Matrix{mat.New(2, 2)}
	if _, err := ModelFromBlocks(a, b, nil, Offsets{}, nil, 1); err == nil {
		t.Fatal("missing noise covariance accepted")
	}
	if _, err := ModelFromBlocks(a, b, nil, Offsets{}, v, 1); err != nil {
		t.Fatalf("valid blocks rejected: %v", err)
	}
}
