package sysid

import (
	"math"
	"math/rand"
)

// Excitation waveform design for black-box identification (paper §IV-B1:
// "We apply waveforms with special patterns at the inputs of the system,
// and monitor the waveforms at the outputs").

// PRBS generates a pseudo-random binary sequence of length n that holds
// each value for `hold` samples and alternates between levels lo and hi.
// PRBS is the classic persistently exciting identification input.
// A non-positive n yields nil (no samples requested).
func PRBS(rng *rand.Rand, n, hold int, lo, hi float64) []float64 {
	if n <= 0 {
		return nil
	}
	if hold < 1 {
		hold = 1
	}
	out := make([]float64, n)
	cur := lo
	for i := 0; i < n; i += hold {
		if rng.Intn(2) == 0 {
			cur = lo
		} else {
			cur = hi
		}
		for j := i; j < i+hold && j < n; j++ {
			out[j] = cur
		}
	}
	return out
}

// RandomLevels generates a piecewise-constant sequence whose value is
// drawn uniformly from levels and held for a random duration in
// [holdMin, holdMax] samples. This exercises the full discrete setting
// range of an architectural knob.
// A non-positive n or an empty level set yields nil.
func RandomLevels(rng *rand.Rand, n int, levels []float64, holdMin, holdMax int) []float64 {
	if n <= 0 || len(levels) == 0 {
		return nil
	}
	if holdMin < 1 {
		holdMin = 1
	}
	if holdMax < holdMin {
		holdMax = holdMin
	}
	out := make([]float64, n)
	i := 0
	for i < n {
		v := levels[rng.Intn(len(levels))]
		h := holdMin + rng.Intn(holdMax-holdMin+1)
		for j := i; j < i+h && j < n; j++ {
			out[j] = v
		}
		i += h
	}
	return out
}

// Staircase sweeps through levels in order, holding each for hold
// samples, then reverses; repeated until n samples are produced. Useful
// for mapping static gains.
// A non-positive n or an empty level set yields nil.
func Staircase(n int, levels []float64, hold int) []float64 {
	if n <= 0 || len(levels) == 0 {
		return nil
	}
	if hold < 1 {
		hold = 1
	}
	out := make([]float64, n)
	idx, dir := 0, 1
	for i := 0; i < n; i += hold {
		for j := i; j < i+hold && j < n; j++ {
			out[j] = levels[idx]
		}
		idx += dir
		if idx >= len(levels) {
			idx, dir = len(levels)-2, -1
			if idx < 0 {
				idx = 0
			}
		} else if idx < 0 {
			idx, dir = 1, 1
			if idx >= len(levels) {
				idx = 0
			}
		}
	}
	return out
}

// Multisine generates a sum of sinusoids at the given cycle frequencies
// (cycles per record) with Schroeder phases to minimize the crest factor,
// scaled so the peak magnitude is amp and centered at offset.
func Multisine(n int, cycles []float64, amp, offset float64) []float64 {
	out := make([]float64, n)
	nf := float64(len(cycles))
	var peak float64
	for i := 0; i < n; i++ {
		t := float64(i) / float64(n)
		var s float64
		for k, c := range cycles {
			// Schroeder phase: φ_k = -π k(k+1)/K.
			phase := -math.Pi * float64(k*(k+1)) / nf
			s += math.Sin(2*math.Pi*c*t + phase)
		}
		out[i] = s
		if a := math.Abs(s); a > peak {
			peak = a
		}
	}
	if peak == 0 {
		peak = 1
	}
	for i := range out {
		out[i] = offset + amp*out[i]/peak
	}
	return out
}

// QuantizeTo maps every sample of x to the nearest value in levels,
// which must be sorted ascending. Architectural knobs take discrete
// values, so identification inputs must respect the allowed settings.
// With no levels there is nothing to snap to: the result is a copy of x.
// A NaN sample snaps to the first level (no |v-l| comparison can beat
// it), so the output always consists of allowed settings.
func QuantizeTo(x []float64, levels []float64) []float64 {
	out := make([]float64, len(x))
	if len(levels) == 0 {
		copy(out, x)
		return out
	}
	for i, v := range x {
		out[i] = nearestLevel(v, levels)
	}
	return out
}

func nearestLevel(v float64, levels []float64) float64 {
	best := levels[0]
	bd := math.Abs(v - best)
	for _, l := range levels[1:] {
		if d := math.Abs(v - l); d < bd {
			best, bd = l, d
		}
	}
	return best
}
