package sysid

import (
	"math"
	"math/rand"
	"testing"

	"mimoctl/internal/mat"
)

func TestFitSubspaceRecoversNoiseFree(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	d := simulateTruth(rng, 1200, 0)
	m, err := FitSubspace(d, SubspaceOptions{Order: 2, Direct: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.SS.Order() != 2 {
		t.Fatalf("order %d", m.SS.Order())
	}
	// The realization basis differs from the truth, but the transfer
	// behaviour must match: compare free-run prediction.
	pred, err := m.Predict(d)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := FitPercent(d.Y, pred)
	if err != nil {
		t.Fatal(err)
	}
	for j, f := range fit {
		if f < 95 {
			t.Fatalf("output %d subspace fit %.1f%%", j, f)
		}
	}
	// Poles must match the truth's A1 eigenvalues (0.6±..., triangular-
	// ish): compare spectral radii of identified A vs truth.
	rho, err := mat.SpectralRadius(m.SS.A)
	if err != nil {
		t.Fatal(err)
	}
	// Truth A1 = [[0.6,0.1],[0.05,0.5]]: eigenvalues ~0.64, 0.46.
	if math.Abs(rho-0.64) > 0.05 {
		t.Fatalf("dominant pole %v, want ≈0.64", rho)
	}
}

func TestFitSubspaceWithNoiseStillUsable(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	d := simulateTruth(rng, 4000, 0.05)
	m, err := FitSubspace(d, SubspaceOptions{Order: 2, Direct: true})
	if err != nil {
		t.Fatal(err)
	}
	pred, err := m.Predict(d)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := FitPercent(d.Y, pred)
	if err != nil {
		t.Fatal(err)
	}
	for j, f := range fit {
		if f < 70 {
			t.Fatalf("output %d noisy subspace fit %.1f%%", j, f)
		}
	}
	if m.V == nil || m.W == nil || !m.W.IsFinite() {
		t.Fatal("noise covariances missing")
	}
	stable, err := m.SS.IsStable(0)
	if err != nil || !stable {
		t.Fatalf("identified model unstable: %v", err)
	}
}

func TestFitSubspaceMatchesARXQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	d := simulateTruth(rng, 3000, 0.02)
	train, val := d.Split(0.7)
	arx, err := FitARX(train, ARXOrders{NA: 1, NB: 1, Direct: true})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := FitSubspace(train, SubspaceOptions{Order: 2, Direct: true})
	if err != nil {
		t.Fatal(err)
	}
	pa, err := arx.Predict(val)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := sub.Predict(val)
	if err != nil {
		t.Fatal(err)
	}
	fa, _ := FitPercent(val.Y, pa)
	fs, _ := FitPercent(val.Y, ps)
	for j := range fa {
		if fs[j] < fa[j]-15 {
			t.Fatalf("output %d: subspace fit %.1f%% far below ARX %.1f%%", j, fs[j], fa[j])
		}
	}
}

func TestFitSubspaceValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	d := simulateTruth(rng, 600, 0)
	if _, err := FitSubspace(d, SubspaceOptions{Order: 0}); err == nil {
		t.Fatal("expected order error")
	}
	short := simulateTruth(rng, 40, 0)
	if _, err := FitSubspace(short, SubspaceOptions{Order: 2}); err == nil {
		t.Fatal("expected record-too-short error")
	}
}

func TestHankelBlockLayout(t *testing.T) {
	data := mat.FromRows([][]float64{{0, 10}, {1, 11}, {2, 12}, {3, 13}, {4, 14}})
	h := hankelBlock(data, 1, 2, 3)
	// Block row 0 = samples 1..3, block row 1 = samples 2..4; 2 channels.
	want := mat.FromRows([][]float64{
		{1, 2, 3},
		{11, 12, 13},
		{2, 3, 4},
		{12, 13, 14},
	})
	if !h.Equal(want) {
		t.Fatalf("hankel = %v, want %v", h, want)
	}
}
