package sysid

import (
	"errors"
	"fmt"
	"math"

	"mimoctl/internal/mat"
)

// Model validation metrics (paper §IV: "we validate the model by running
// additional programs on both the model and the real system ... we
// estimate the model error").

// FitPercent returns, per output channel, the normalized-root-mean-square
// fit in percent (MATLAB's `compare` metric):
//
//	100 * (1 - ||y - ŷ|| / ||y - mean(y)||)
//
// 100 means a perfect fit; 0 means no better than the mean.
func FitPercent(yTrue, yPred *mat.Matrix) ([]float64, error) {
	if yTrue.Rows() != yPred.Rows() || yTrue.Cols() != yPred.Cols() {
		return nil, errors.New("sysid: FitPercent shape mismatch")
	}
	t := yTrue.Rows()
	out := make([]float64, yTrue.Cols())
	for j := 0; j < yTrue.Cols(); j++ {
		var mean float64
		for k := 0; k < t; k++ {
			mean += yTrue.At(k, j)
		}
		mean /= float64(t)
		var num, den float64
		for k := 0; k < t; k++ {
			d := yTrue.At(k, j) - yPred.At(k, j)
			num += d * d
			c := yTrue.At(k, j) - mean
			den += c * c
		}
		if den == 0 {
			if num == 0 {
				out[j] = 100
			}
			continue
		}
		out[j] = 100 * (1 - math.Sqrt(num)/math.Sqrt(den))
	}
	return out, nil
}

// MeanRelError returns, per output, mean(|y - ŷ|) / mean(|y|) — the
// "average prediction error across the whole execution" the paper's
// uncertainty guardbands refer to (§IV-B4).
func MeanRelError(yTrue, yPred *mat.Matrix) ([]float64, error) {
	if yTrue.Rows() != yPred.Rows() || yTrue.Cols() != yPred.Cols() {
		return nil, errors.New("sysid: MeanRelError shape mismatch")
	}
	t := yTrue.Rows()
	out := make([]float64, yTrue.Cols())
	for j := 0; j < yTrue.Cols(); j++ {
		var errSum, magSum float64
		for k := 0; k < t; k++ {
			errSum += math.Abs(yTrue.At(k, j) - yPred.At(k, j))
			magSum += math.Abs(yTrue.At(k, j))
		}
		if magSum == 0 {
			continue
		}
		out[j] = errSum / magSum
	}
	return out, nil
}

// MaxRelError returns, per output, the largest |y - ŷ| over the record
// divided by the mean |y|, a robust "maximum error" like the paper's
// 14%/10% model-error figures.
func MaxRelError(yTrue, yPred *mat.Matrix) ([]float64, error) {
	if yTrue.Rows() != yPred.Rows() || yTrue.Cols() != yPred.Cols() {
		return nil, errors.New("sysid: MaxRelError shape mismatch")
	}
	t := yTrue.Rows()
	out := make([]float64, yTrue.Cols())
	for j := 0; j < yTrue.Cols(); j++ {
		var magSum, worst float64
		for k := 0; k < t; k++ {
			magSum += math.Abs(yTrue.At(k, j))
			if d := math.Abs(yTrue.At(k, j) - yPred.At(k, j)); d > worst {
				worst = d
			}
		}
		if magSum == 0 {
			continue
		}
		out[j] = worst / (magSum / float64(t))
	}
	return out, nil
}

// ResidualAutocorr returns the normalized autocorrelation of the
// per-output one-step residuals at lags 1..maxLag. Small values indicate
// the model captured the dynamics (residuals are white).
func ResidualAutocorr(yTrue, yPred *mat.Matrix, maxLag int) ([][]float64, error) {
	if yTrue.Rows() != yPred.Rows() || yTrue.Cols() != yPred.Cols() {
		return nil, errors.New("sysid: ResidualAutocorr shape mismatch")
	}
	t := yTrue.Rows()
	out := make([][]float64, yTrue.Cols())
	for j := 0; j < yTrue.Cols(); j++ {
		e := make([]float64, t)
		var mean float64
		for k := 0; k < t; k++ {
			e[k] = yTrue.At(k, j) - yPred.At(k, j)
			mean += e[k]
		}
		mean /= float64(t)
		var c0 float64
		for k := 0; k < t; k++ {
			e[k] -= mean
			c0 += e[k] * e[k]
		}
		acf := make([]float64, maxLag)
		if c0 > 0 {
			for lag := 1; lag <= maxLag; lag++ {
				var c float64
				for k := lag; k < t; k++ {
					c += e[k] * e[k-lag]
				}
				acf[lag-1] = c / c0
			}
		}
		out[j] = acf
	}
	return out, nil
}

// OrderResult records the validation quality of one candidate order.
type OrderResult struct {
	Orders   ARXOrders
	StateDim int
	// MaxErr is the worst per-output MaxRelError on validation data in
	// simulation mode.
	MaxErr []float64
	// Fit is the per-output FitPercent on validation data.
	Fit []float64
}

// SelectOrder fits candidate ARX orders NA = NB = 1..maxOrder (Direct
// feed-through as given) on train, evaluates free-run prediction on val,
// and returns all results plus the index of the smallest order whose
// worst-output error is within tol of the best achieved (the paper picks
// "a good tradeoff between accuracy and computation cost").
func SelectOrder(train, val *Data, maxOrder int, direct bool, tol float64) (best int, results []OrderResult, err error) {
	if maxOrder < 1 {
		return 0, nil, errors.New("sysid: maxOrder must be >= 1")
	}
	for p := 1; p <= maxOrder; p++ {
		ord := ARXOrders{NA: p, NB: p, Direct: direct}
		m, ferr := FitARX(train, ord)
		if ferr != nil {
			return 0, nil, fmt.Errorf("sysid: order %d: %w", p, ferr)
		}
		pred, perr := m.Predict(val)
		if perr != nil {
			return 0, nil, perr
		}
		maxErr, merr := MaxRelError(val.Y, pred)
		if merr != nil {
			return 0, nil, merr
		}
		fit, ferr2 := FitPercent(val.Y, pred)
		if ferr2 != nil {
			return 0, nil, ferr2
		}
		results = append(results, OrderResult{
			Orders: ord, StateDim: ord.StateDim(val.Y.Cols()),
			MaxErr: maxErr, Fit: fit,
		})
	}
	worst := func(r OrderResult) float64 {
		w := 0.0
		for _, e := range r.MaxErr {
			if e > w {
				w = e
			}
		}
		return w
	}
	bestErr := math.Inf(1)
	for _, r := range results {
		if w := worst(r); w < bestErr {
			bestErr = w
		}
	}
	for i, r := range results {
		if worst(r) <= bestErr+tol {
			return i, results, nil
		}
	}
	return len(results) - 1, results, nil
}
