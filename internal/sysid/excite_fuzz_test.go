package sysid

import (
	"encoding/binary"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// Fuzz targets for the excitation generators: whatever the parameters,
// the generators must not panic, must return the requested number of
// samples, and must emit only allowed values — identification inputs
// are applied to the (simulated) hardware knobs, so an out-of-range
// sample is an illegal actuation.

func FuzzPRBS(f *testing.F) {
	f.Add(int64(1), 100, 5, 0.0, 1.0)
	f.Add(int64(7), 0, 0, -2.0, 2.0)
	f.Add(int64(42), 1, -3, 3.5, 3.5)
	f.Add(int64(-1), 17, 1000, math.Inf(-1), math.NaN())
	f.Fuzz(func(t *testing.T, seed int64, n, hold int, lo, hi float64) {
		if n > 1<<16 {
			t.Skip("unbounded allocation")
		}
		out := PRBS(rand.New(rand.NewSource(seed)), n, hold, lo, hi)
		if n <= 0 {
			if out != nil {
				t.Fatalf("n=%d: want nil, got %d samples", n, len(out))
			}
			return
		}
		if len(out) != n {
			t.Fatalf("n=%d: got %d samples", n, len(out))
		}
		lob, hib := math.Float64bits(lo), math.Float64bits(hi)
		for i, v := range out {
			if b := math.Float64bits(v); b != lob && b != hib {
				t.Fatalf("sample %d = %v is neither lo=%v nor hi=%v", i, v, lo, hi)
			}
		}
	})
}

func FuzzQuantizeTo(f *testing.F) {
	f.Add(floatBytes(0.5, 1.7, -3, math.NaN()), floatBytes(0, 1, 2))
	f.Add(floatBytes(1, 2, 3), []byte{})
	f.Add([]byte{}, floatBytes(5))
	f.Add(floatBytes(math.Inf(1), math.Inf(-1)), floatBytes(-1, 1))
	f.Fuzz(func(t *testing.T, xb, lb []byte) {
		x := decodeFloats(xb)
		levels := decodeFloats(lb)
		// The contract requires sorted levels; NaN has no order, so make
		// it representable by sorting NaNs to the front.
		sort.Slice(levels, func(i, j int) bool {
			return levels[i] < levels[j] || math.IsNaN(levels[i]) && !math.IsNaN(levels[j])
		})
		out := QuantizeTo(x, levels)
		if len(out) != len(x) {
			t.Fatalf("len(out)=%d, len(x)=%d", len(out), len(x))
		}
		if len(levels) == 0 {
			for i := range x {
				if math.Float64bits(out[i]) != math.Float64bits(x[i]) {
					t.Fatalf("no levels: out[%d]=%v is not a copy of x[%d]=%v", i, out[i], i, x[i])
				}
			}
			return
		}
		allowed := map[uint64]bool{}
		for _, l := range levels {
			allowed[math.Float64bits(l)] = true
		}
		for i, v := range out {
			if !allowed[math.Float64bits(v)] {
				t.Fatalf("out[%d]=%v is not one of the %d levels", i, v, len(levels))
			}
		}
	})
}

func floatBytes(vs ...float64) []byte {
	b := make([]byte, 8*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
	return b
}

func decodeFloats(b []byte) []float64 {
	out := make([]float64, 0, len(b)/8)
	for len(b) >= 8 {
		out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(b)))
		b = b[8:]
	}
	return out
}
