package batch

import (
	"math/rand"
	"testing"

	"mimoctl/internal/core"
	"mimoctl/internal/flightrec"
	"mimoctl/internal/sim"
)

// stepPair advances a lane and its scalar twin with identical telemetry
// and fails on any config divergence, returning the chosen config.
func stepPair(t *testing.T, e *Engine, l *scalarLane, tel sim.Telemetry) sim.Config {
	t.Helper()
	got := e.StepLane(l.id, tel)
	want := l.ctrl.Step(tel)
	if got != want {
		t.Fatalf("lane %d: batch %+v, scalar %+v", l.id, got, want)
	}
	l.cfg = got
	return got
}

// TestBatchLaneLifecycle covers fleet-size and slot-reuse corners in
// one table: empty engine, single lane, a fleet that is not a multiple
// of the unroll width, and mid-run retire + re-add.
func TestBatchLaneLifecycle(t *testing.T) {
	cases := []struct {
		name  string
		lanes int // initial fleet size
	}{
		{"empty", 0},
		{"single", 1},
		{"unroll-multiple", 2 * UnrollWidth},
		{"non-multiple", UnrollWidth + 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(7 + tc.lanes)))
			e := New()
			var lanes []*scalarLane
			addLane := func(three bool) *scalarLane {
				c := designedController(t, three).Clone()
				c.Reset()
				c.SetTargets(1+rng.Float64()*3, 1+rng.Float64()*20)
				id, err := e.Add(c.BatchState())
				if err != nil {
					t.Fatal(err)
				}
				l := &scalarLane{id: id, ctrl: c, cfg: sim.MidrangeConfig()}
				lanes = append(lanes, l)
				return l
			}
			for i := 0; i < tc.lanes; i++ {
				addLane(i%2 == 0)
			}
			if e.Len() != tc.lanes {
				t.Fatalf("Len=%d, want %d", e.Len(), tc.lanes)
			}

			runEpochs := func(n int) {
				tels := make([]sim.Telemetry, e.Slots())
				outs := make([]sim.Config, e.Slots())
				for ep := 0; ep < n; ep++ {
					for _, l := range lanes {
						tels[l.id] = randTelemetry(rng, ep, l.cfg)
					}
					if err := e.StepAll(tels, outs); err != nil {
						t.Fatal(err)
					}
					for _, l := range lanes {
						want := l.ctrl.Step(tels[l.id])
						if outs[l.id] != want {
							t.Fatalf("epoch %d lane %d: batch %+v, scalar %+v", ep, l.id, outs[l.id], want)
						}
						l.cfg = outs[l.id]
					}
				}
			}
			runEpochs(40)

			if tc.lanes == 0 {
				// StepAll on an empty engine is a no-op, not an error.
				if err := e.StepAll(nil, nil); err != nil {
					t.Fatal(err)
				}
				return
			}

			// Retire a lane mid-run; the remaining fleet must stay in
			// lockstep and the retired id must be rejected.
			victim := lanes[len(lanes)/2]
			if err := e.Retire(victim.id); err != nil {
				t.Fatal(err)
			}
			if e.Active(victim.id) {
				t.Fatal("retired lane still active")
			}
			if err := e.Retire(victim.id); err == nil {
				t.Fatal("double retire accepted")
			}
			if err := e.ExtractTo(victim.id, victim.ctrl); err == nil {
				t.Fatal("ExtractTo on retired lane accepted")
			}
			lanes = append(lanes[:len(lanes)/2], lanes[len(lanes)/2+1:]...)
			runEpochs(40)

			// Re-add into the freed slot: the id must be reused and the
			// new lane must track its own twin from its snapshot.
			before := e.Slots()
			l := addLane(true)
			if l.id != victim.id {
				t.Fatalf("freed slot not reused: got id %d, want %d", l.id, victim.id)
			}
			if e.Slots() != before {
				t.Fatalf("Slots grew from %d to %d despite free slot", before, e.Slots())
			}
			runEpochs(40)
		})
	}
}

// TestBatchCloneRoundTrip proves the snapshot/restore cycle is lossless
// mid-run: clone a live scalar controller, load the clone into a lane,
// step both, extract back into a fresh clone, and keep stepping the
// extracted controller on the scalar path — all three stay bit-identical.
func TestBatchCloneRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sc := designedController(t, true).Clone()
	sc.Reset()
	sc.SetTargets(2.5, 15)
	cfg := sim.MidrangeConfig()
	for ep := 0; ep < 300; ep++ {
		cfg = sc.Step(randTelemetry(rng, ep, cfg))
	}

	e, id, err := FromController(sc.Clone())
	if err != nil {
		t.Fatal(err)
	}
	l := &scalarLane{id: id, ctrl: sc, cfg: cfg}
	for ep := 0; ep < 200; ep++ {
		stepPair(t, e, l, randTelemetry(rng, ep, l.cfg))
	}

	// Extract mid-run and continue on the scalar path.
	back := sc.Clone()
	if err := e.ExtractTo(id, back); err != nil {
		t.Fatal(err)
	}
	requireSameRuntime(t, "round-trip", back.BatchState(), sc.BatchState())
	for ep := 0; ep < 200; ep++ {
		tel := randTelemetry(rng, ep, l.cfg)
		a := sc.Step(tel)
		b := back.Step(tel)
		c := e.StepLane(id, tel)
		if a != b || a != c {
			t.Fatalf("epoch %d: scalar %+v, extracted %+v, batch %+v", ep, a, b, c)
		}
		l.cfg = a
	}
}

// TestBatchAddRejections pins the scalar-fallback contract: shapes and
// structures the kernels are not specialized for must be refused at
// load time, never mis-stepped.
func TestBatchAddRejections(t *testing.T) {
	base := designedController(t, true)

	t.Run("non-deltaU", func(t *testing.T) {
		s := base.Clone().BatchState()
		s.Opts.DeltaU = false
		if _, err := New().Add(s); err == nil {
			t.Fatal("non-ΔU structure accepted")
		}
	})
	t.Run("non-integral", func(t *testing.T) {
		s := base.Clone().BatchState()
		s.Opts.Integral = false
		if _, err := New().Add(s); err == nil {
			t.Fatal("non-integral structure accepted")
		}
	})
	t.Run("wrong-shape", func(t *testing.T) {
		s := base.Clone().BatchState()
		s.ThreeInput = false // claims 2 inputs; matrices are 3-input
		if _, err := New().Add(s); err == nil {
			t.Fatal("mismatched input shape accepted")
		}
	})
	t.Run("invalid-config", func(t *testing.T) {
		s := base.Clone().BatchState()
		s.HaveCur = true
		s.Cur = sim.Config{FreqIdx: 99}
		if _, err := New().Add(s); err == nil {
			t.Fatal("invalid current config accepted")
		}
	})
	t.Run("flight-recorder", func(t *testing.T) {
		c := base.Clone()
		c.SetFlightRecorder(flightrec.New(16))
		if _, err := FromControllers([]*core.MIMOController{c}); err == nil {
			t.Fatal("recorder-attached controller accepted")
		}
		if _, _, err := FromController(c); err == nil {
			t.Fatal("recorder-attached controller accepted by FromController")
		}
	})
	t.Run("stale-extract-shape", func(t *testing.T) {
		e, id, err := FromController(base.Clone())
		if err != nil {
			t.Fatal(err)
		}
		wrong := designedController(t, false).Clone()
		if err := e.ExtractTo(id, wrong); err == nil {
			t.Fatal("extract into wrong-shaped controller accepted")
		}
	})
}

// TestBatchStepAllSliceCheck pins the slice-length contract.
func TestBatchStepAllSliceCheck(t *testing.T) {
	e, _, err := FromController(designedController(t, true).Clone())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.StepAll(nil, make([]sim.Config, 1)); err == nil {
		t.Fatal("short telemetry slice accepted")
	}
	if err := e.StepAll(make([]sim.Telemetry, 1), nil); err == nil {
		t.Fatal("short output slice accepted")
	}
}
