package batch

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"mimoctl/internal/core"
	"mimoctl/internal/obs"
	"mimoctl/internal/sim"
	"mimoctl/internal/supervisor"
)

var errApplyInject = errors.New("injected actuation failure")

// requireSameSupState fails the test unless two supervised-runtime
// snapshots carry bit-identical state (floats by Float64bits with the
// NaN equivalence of floatsIdentical; everything else exactly).
func requireSameSupState(t *testing.T, lane string, got, want supervisor.BatchState) {
	t.Helper()
	gf := []float64{got.IPSTarget, got.PowerTarget, got.GoodIPS, got.GoodPower,
		got.GoodL1, got.GoodL2, got.EMAInnov, got.EMAErr}
	wf := []float64{want.IPSTarget, want.PowerTarget, want.GoodIPS, want.GoodPower,
		want.GoodL1, want.GoodL2, want.EMAInnov, want.EMAErr}
	if !floatsIdentical(gf, wf) {
		t.Fatalf("%s: supervised float state %v != scalar %v", lane, gf, wf)
	}
	got.IPSTarget, got.PowerTarget, got.GoodIPS, got.GoodPower = 0, 0, 0, 0
	got.GoodL1, got.GoodL2, got.EMAInnov, got.EMAErr = 0, 0, 0, 0
	want.IPSTarget, want.PowerTarget, want.GoodIPS, want.GoodPower = 0, 0, 0, 0
	want.GoodL1, want.GoodL2, want.EMAInnov, want.EMAErr = 0, 0, 0, 0
	if got != want {
		t.Fatalf("%s: supervised state %+v != scalar %+v", lane, got, want)
	}
}

// supFleetOptions returns the per-lane supervisor options used by the
// differential tests: short grace/hysteresis windows so fault-injected
// runs cross fallback entry, the fallback dwell, and hysteretic
// re-engagement many times within a few thousand epochs. Odd lanes get
// a divergence limit tight enough that random-walk telemetry far from
// target trips the tracking-error alarm with no sensor fault at all.
func supFleetOptions(j int) supervisor.Options {
	o := supervisor.Options{
		GraceEpochs:        30 + 5*(j%4),
		FallbackAfter:      10,
		MaxStaleEpochs:     6,
		MinFallbackEpochs:  25,
		ReengageAfter:      12,
		ApplyFallbackAfter: 4,
	}
	if j%2 == 1 {
		o.DivergenceLimit = 0.2
		o.DivergenceAlpha = 0.1
	}
	return o
}

// supRandTelemetry is randTelemetry with a plausible-by-default
// operating region: the non-finite/extreme tail is kept, but nominal
// draws stay inside the supervisor's default plausibility bounds so a
// lane in fallback can accumulate the clean-epoch streak hysteretic
// re-engagement requires. (randTelemetry's 25 W power tail is above the
// default 12 W ceiling more than half the time — a fleet fed with it
// almost never re-engages, which would leave the re-admission path
// untested.)
func supRandTelemetry(rng *rand.Rand, epoch int) sim.Telemetry {
	tel := sim.Telemetry{Epoch: epoch}
	switch rng.Intn(50) {
	case 0:
		tel.IPS = math.NaN()
		tel.PowerW = rng.Float64() * 20
	case 1:
		tel.IPS = rng.Float64() * 4
		tel.PowerW = math.Inf(1)
	case 2:
		tel.IPS = math.Inf(-1)
		tel.PowerW = math.NaN()
	case 3:
		tel.IPS = rng.NormFloat64() * 1e9
		tel.PowerW = rng.NormFloat64() * 1e9
	default:
		tel.IPS = 0.3 + rng.Float64()*4
		tel.PowerW = 1 + rng.Float64()*10
	}
	return tel
}

// supPair couples a batch-admitted supervised lane with an
// independently built always-scalar reference stepped in lockstep.
type supPair struct {
	id             int
	twin, ref      *supervisor.Supervised
	innerB, innerR *core.MIMOController
	cfgB, cfgR     sim.Config
}

// TestBatchSupervisedFleetBitIdentical is the supervised tier's
// differential harness of record: a mixed fleet of supervised 2- and
// 3-input lanes, each shadowed by an always-scalar reference, stepped
// for thousands of randomized epochs with non-finite telemetry,
// deterministic stuck-sensor windows, apply-failure bursts, target
// changes (including dropped non-finite ones), and resets. Every epoch
// must pick identical configurations; at regular intervals the full
// supervised and inner runtime state must compare bit-identically. The
// fault schedule must drive lanes off and back onto the fast path —
// a run that never evicts or never re-admits fails as vacuous.
func TestBatchSupervisedFleetBitIdentical(t *testing.T) {
	const (
		lanes  = 8
		epochs = 3000
	)
	rng := rand.New(rand.NewSource(99))
	e := NewSupervised()
	pairs := make([]*supPair, lanes)
	for j := 0; j < lanes; j++ {
		base := designedController(t, j%2 == 0)
		innerB, innerR := base.Clone(), base.Clone()
		innerB.Reset()
		innerR.Reset()
		o := supFleetOptions(j)
		p := &supPair{
			twin:   supervisor.New(innerB, o),
			ref:    supervisor.New(innerR, o),
			innerB: innerB,
			innerR: innerR,
			cfgB:   sim.MidrangeConfig(),
			cfgR:   sim.MidrangeConfig(),
		}
		ips, pow := 0.8+0.3*float64(j), 3+float64(j)
		p.twin.SetTargets(ips, pow)
		p.ref.SetTargets(ips, pow)
		// Warm both scalar so the admitted state is mid-run, not fresh.
		for w := 0; w < 10; w++ {
			tel := sim.Telemetry{Epoch: w, IPS: 0.5 + rng.Float64()*3, PowerW: 1 + rng.Float64()*9}
			telB, telR := tel, tel
			telB.Config, telR.Config = p.cfgB, p.cfgR
			p.cfgB = p.twin.Step(telB)
			p.cfgR = p.ref.Step(telR)
			p.twin.ObserveApply(p.cfgB, nil)
			p.ref.ObserveApply(p.cfgR, nil)
		}
		id, err := e.Add(p.twin)
		if err != nil {
			t.Fatalf("admit lane %d: %v", j, err)
		}
		p.id = id
		pairs[j] = p
	}

	tels := make([]sim.Telemetry, lanes)
	outs := make([]sim.Config, lanes)
	refOut := make([]sim.Config, lanes)
	burstLeft := make([]int, lanes)
	wasParked := make([]bool, lanes)
	evictions, readmissions := 0, 0
	for epoch := 0; epoch < epochs; epoch++ {
		if rng.Intn(150) == 0 {
			burstLeft[rng.Intn(lanes)] = 6
		}
		if rng.Intn(300) == 0 {
			j := rng.Intn(lanes)
			ips, pow := 0.5+rng.Float64()*3, 2+rng.Float64()*12
			if rng.Intn(6) == 0 {
				ips = math.NaN() // dropped silently by both paths
			}
			e.SetTargets(pairs[j].id, ips, pow)
			pairs[j].ref.SetTargets(ips, pow)
		}
		if rng.Intn(900) == 0 {
			j := rng.Intn(lanes)
			e.Reset(pairs[j].id)
			pairs[j].ref.Reset()
		}
		for j, p := range pairs {
			tel := supRandTelemetry(rng, epoch)
			// Deterministic stuck-sensor windows force dead-channel
			// fallbacks on every lane.
			if start := 500 + 130*j; epoch >= start && epoch < start+30 {
				tel.IPS = math.NaN()
			}
			telB, telR := tel, tel
			telB.Config, telR.Config = p.cfgB, p.cfgR
			tels[p.id] = telB
			refOut[j] = p.ref.Step(telR)
		}
		if err := e.StepAll(tels, outs); err != nil {
			t.Fatal(err)
		}
		for j, p := range pairs {
			if outs[p.id] != refOut[j] {
				t.Fatalf("epoch %d lane %d: batch cfg %+v != scalar %+v (parked=%v)",
					epoch, j, outs[p.id], refOut[j], e.Parked(p.id))
			}
			p.cfgB, p.cfgR = outs[p.id], refOut[j]
			var aerr error
			if burstLeft[j] > 0 {
				burstLeft[j]--
				aerr = errApplyInject
			}
			e.ObserveApply(p.id, p.cfgB, aerr)
			p.ref.ObserveApply(p.cfgR, aerr)
			if e.Parked(p.id) != wasParked[j] {
				if e.Parked(p.id) {
					evictions++
				} else {
					readmissions++
				}
				wasParked[j] = e.Parked(p.id)
			}
		}
		if (epoch+1)%300 == 0 {
			for j, p := range pairs {
				lane := fmt.Sprintf("epoch %d lane %d", epoch, j)
				e.Flush(p.id)
				requireSameSupState(t, lane, p.twin.BatchState(), p.ref.BatchState())
				requireSameRuntime(t, lane, p.innerB.BatchState(), p.innerR.BatchState())
				if gh, wh := e.Health(p.id), p.ref.Health(); gh != wh {
					t.Fatalf("%s: health %+v != scalar %+v", lane, gh, wh)
				}
				if e.Mode(p.id) != p.ref.Mode() {
					t.Fatalf("%s: mode %v != scalar %v", lane, e.Mode(p.id), p.ref.Mode())
				}
			}
		}
	}
	fallbacks, reengagements := 0, 0
	for _, p := range pairs {
		h := e.Health(p.id)
		fallbacks += h.Fallbacks
		reengagements += h.Reengagements
	}
	if fallbacks == 0 || reengagements == 0 || evictions == 0 || readmissions == 0 {
		t.Fatalf("differential run never exercised the escape hatch: fallbacks=%d reengagements=%d evictions=%d readmissions=%d",
			fallbacks, reengagements, evictions, readmissions)
	}
}

// TestBatchSupervisedEvictReadmitBitIdentical pins the escape hatch
// end to end on one lane: a stuck sensor evicts the lane mid-run to
// its scalar twin (fallback), recovery re-engages and re-admits it, and
// at every boundary — parked, readmission, and a long nominal stretch
// after — the supervised state (monitor EMAs, last-good sanitize
// values, staleness and hysteresis counters) replays bit-identically
// against an always-scalar supervised loop.
func TestBatchSupervisedEvictReadmitBitIdentical(t *testing.T) {
	base := designedController(t, true)
	innerB, innerR := base.Clone(), base.Clone()
	innerB.Reset()
	innerR.Reset()
	o := supervisor.Options{
		GraceEpochs:       20,
		FallbackAfter:     8,
		MaxStaleEpochs:    5,
		MinFallbackEpochs: 15,
		ReengageAfter:     10,
	}
	supB := supervisor.New(innerB, o)
	supR := supervisor.New(innerR, o)
	supB.SetTargets(2, 6)
	supR.SetTargets(2, 6)
	e, id, err := FromSupervised(supB)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	cfgB, cfgR := sim.MidrangeConfig(), sim.MidrangeConfig()
	step := func(epoch int, nanIPS bool) {
		t.Helper()
		tel := sim.Telemetry{Epoch: epoch, IPS: 1.6 + rng.Float64()*0.8, PowerW: 5 + rng.Float64()*2}
		if nanIPS {
			tel.IPS = math.NaN()
		}
		telB, telR := tel, tel
		telB.Config, telR.Config = cfgB, cfgR
		gotB := e.StepLane(id, telB)
		gotR := supR.Step(telR)
		if gotB != gotR {
			t.Fatalf("epoch %d: batch cfg %+v != scalar %+v (parked=%v)", epoch, gotB, gotR, e.Parked(id))
		}
		cfgB, cfgR = gotB, gotR
		e.ObserveApply(id, gotB, nil)
		supR.ObserveApply(gotR, nil)
	}
	epoch := 0
	for ; epoch < 100; epoch++ {
		step(epoch, false)
	}
	if e.Parked(id) {
		t.Fatal("lane parked on healthy telemetry")
	}
	// Stuck IPS sensor: the channel goes stale past MaxStaleEpochs, the
	// dead-channel alarm runs the sick streak to FallbackAfter, and the
	// fallback entry must evict the lane mid-run.
	for ; epoch < 130; epoch++ {
		step(epoch, true)
	}
	if !e.Parked(id) {
		t.Fatal("stuck sensor did not evict the lane")
	}
	if supB.Mode() != supervisor.ModeFallback || supR.Mode() != supervisor.ModeFallback {
		t.Fatalf("modes after stuck sensor: twin %v scalar %v, want fallback", supB.Mode(), supR.Mode())
	}
	requireSameSupState(t, "parked", supB.BatchState(), supR.BatchState())
	requireSameRuntime(t, "parked", innerB.BatchState(), innerR.BatchState())
	// Healthy telemetry again: hysteretic re-engagement, then
	// re-admission to the fast path.
	for ; epoch < 400 && e.Parked(id); epoch++ {
		step(epoch, false)
	}
	if e.Parked(id) {
		t.Fatal("lane never re-admitted after recovery")
	}
	if e.Mode(id) != supervisor.ModeEngaged {
		t.Fatalf("mode after readmission: %v, want engaged", e.Mode(id))
	}
	e.Flush(id)
	requireSameSupState(t, "readmit", supB.BatchState(), supR.BatchState())
	requireSameRuntime(t, "readmit", innerB.BatchState(), innerR.BatchState())
	// A long nominal stretch on the fast path after re-admission.
	for ; epoch < 700; epoch++ {
		step(epoch, false)
	}
	e.Flush(id)
	requireSameSupState(t, "settled", supB.BatchState(), supR.BatchState())
	requireSameRuntime(t, "settled", innerB.BatchState(), innerR.BatchState())
	h := e.Health(id)
	if h.Fallbacks == 0 || h.Reengagements == 0 {
		t.Fatalf("escape hatch not exercised: %+v", h)
	}
	if rh := supR.Health(); h != rh {
		t.Fatalf("health %+v != scalar %+v", h, rh)
	}
}

// TestBatchShardedIdentical pins the bare-MIMO sharded driver: the same
// fleet stepped sequentially and with 1/2/3/4 shards (rotating every
// epoch) must produce byte-identical configurations and runtime state.
func TestBatchShardedIdentical(t *testing.T) {
	const n, epochs = 37, 600
	e1, tels1, out1 := fleetEngine(t, n)
	e2, tels2, out2 := fleetEngine(t, n)
	rng := rand.New(rand.NewSource(31))
	for epoch := 0; epoch < epochs; epoch++ {
		for j := 0; j < n; j++ {
			tel := randTelemetry(rng, epoch, tels1[j].Config)
			tels1[j], tels2[j] = tel, tel
		}
		if err := e1.StepAll(tels1, out1); err != nil {
			t.Fatal(err)
		}
		if err := e2.StepAllSharded(tels2, out2, 1+epoch%4); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < n; j++ {
			if out1[j] != out2[j] {
				t.Fatalf("epoch %d (shards %d) lane %d: %+v != %+v", epoch, 1+epoch%4, j, out1[j], out2[j])
			}
			tels1[j].Config, tels2[j].Config = out1[j], out2[j]
		}
	}
	s1 := designedController(t, true).Clone()
	s2 := designedController(t, true).Clone()
	for j := 0; j < n; j++ {
		if err := e1.ExtractTo(j, s1); err != nil {
			t.Fatal(err)
		}
		if err := e2.ExtractTo(j, s2); err != nil {
			t.Fatal(err)
		}
		requireSameRuntime(t, fmt.Sprintf("lane %d", j), s2.BatchState(), s1.BatchState())
	}
}

// supShardFleet deterministically builds one supervised batch fleet for
// the sharded differential (two calls produce identical fleets).
func supShardFleet(t *testing.T, n int) (*SupEngine, []*supervisor.Supervised) {
	t.Helper()
	e := NewSupervised()
	rng := rand.New(rand.NewSource(13))
	sups := make([]*supervisor.Supervised, n)
	for j := 0; j < n; j++ {
		c := designedController(t, j%3 != 0).Clone()
		c.Reset()
		s := supervisor.New(c, supFleetOptions(j))
		s.SetTargets(0.8+rng.Float64()*2, 3+rng.Float64()*6)
		if _, err := e.Add(s); err != nil {
			t.Fatal(err)
		}
		sups[j] = s
	}
	return e, sups
}

// TestBatchSupervisedShardedIdentical pins the supervised sharded
// driver against the sequential one across eviction/readmission cycles:
// byte-identical configurations every epoch and byte-identical
// supervised state at the end, at every shard count 1–4.
func TestBatchSupervisedShardedIdentical(t *testing.T) {
	const n, epochs = 11, 1500
	seq, seqSups := supShardFleet(t, n)
	shd, shdSups := supShardFleet(t, n)
	rng := rand.New(rand.NewSource(21))
	telsA := make([]sim.Telemetry, n)
	telsB := make([]sim.Telemetry, n)
	outA := make([]sim.Config, n)
	outB := make([]sim.Config, n)
	cfgA := make([]sim.Config, n)
	cfgB := make([]sim.Config, n)
	for j := range cfgA {
		cfgA[j], cfgB[j] = sim.MidrangeConfig(), sim.MidrangeConfig()
	}
	for epoch := 0; epoch < epochs; epoch++ {
		for j := 0; j < n; j++ {
			tel := supRandTelemetry(rng, epoch)
			if start := 200 + 90*j; epoch >= start && epoch < start+25 {
				tel.PowerW = math.Inf(1)
			}
			telA, telB := tel, tel
			telA.Config, telB.Config = cfgA[j], cfgB[j]
			telsA[j], telsB[j] = telA, telB
		}
		if err := seq.StepAll(telsA, outA); err != nil {
			t.Fatal(err)
		}
		shards := 1 + epoch%4
		if err := shd.StepAllSharded(telsB, outB, shards); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < n; j++ {
			if outA[j] != outB[j] {
				t.Fatalf("epoch %d (shards %d) lane %d: %+v != %+v", epoch, shards, j, outA[j], outB[j])
			}
			cfgA[j], cfgB[j] = outA[j], outB[j]
			var aerr error
			if epoch%211 < 6 && j == (epoch/211)%n {
				aerr = errApplyInject
			}
			seq.ObserveApply(j, outA[j], aerr)
			shd.ObserveApply(j, outB[j], aerr)
		}
	}
	for j := 0; j < n; j++ {
		seq.Flush(j)
		shd.Flush(j)
		lane := fmt.Sprintf("lane %d", j)
		requireSameSupState(t, lane, shdSups[j].BatchState(), seqSups[j].BatchState())
		if gh, wh := shd.Health(j), seq.Health(j); gh != wh {
			t.Fatalf("%s: health %+v != %+v", lane, gh, wh)
		}
	}
}

// supAllocFleet builds an n-lane supervised fleet warmed past its grace
// period (so the alarm/EMA path is live) for the zero-alloc gates,
// optionally wired into a fleet observability plane with an event bus.
func supAllocFleet(tb testing.TB, n int, wireObs bool) (*SupEngine, []sim.Telemetry, []sim.Config, func()) {
	tb.Helper()
	base := designedController(tb, true)
	rng := rand.New(rand.NewSource(17))
	e := NewSupervised()
	cleanup := func() {}
	var fleet *obs.Fleet
	if wireObs {
		bus := obs.NewBus(4096)
		fleet = obs.NewFleet(obs.Options{Bus: bus})
		cleanup = func() { _ = bus.Close() }
	}
	// Targets are pinned to each lane's operating point so the
	// tracking-error EMA settles near zero: no lane may leave the fast
	// path, however many epochs the alloc gates and benchmarks run.
	tels := make([]sim.Telemetry, n)
	outs := make([]sim.Config, n)
	for i := range tels {
		tels[i] = sim.Telemetry{IPS: 1.5 + rng.Float64(), PowerW: 5 + rng.Float64()*2, Config: sim.MidrangeConfig()}
	}
	for i := 0; i < n; i++ {
		c := base.Clone()
		c.Reset()
		s := supervisor.New(c, supervisor.Options{GraceEpochs: 60})
		s.SetTargets(tels[i].IPS, tels[i].PowerW)
		if wireObs {
			s.SetLoopObs(fleet.Register(fmt.Sprintf("lane-%d", i)))
		}
		if _, err := e.Add(s); err != nil {
			tb.Fatal(err)
		}
	}
	for w := 0; w < 100; w++ {
		if err := e.StepAll(tels, outs); err != nil {
			tb.Fatal(err)
		}
	}
	return e, tels, outs, cleanup
}

// TestBatchSupervisedStepZeroAlloc pins the supervised fast path at 0
// allocs per fleet epoch — with and without the fleet observability
// plane attached (per-epoch events included). This is where the batch
// tier beats even a "zero-alloc" scalar loop: the scalar engaged path
// allocates in LastInnovation every post-grace epoch, the fused kernel
// reads the innovation SoA in place.
func TestBatchSupervisedStepZeroAlloc(t *testing.T) {
	for _, tc := range []struct {
		name  string
		wired bool
	}{{"bare", false}, {"events", true}} {
		t.Run(tc.name, func(t *testing.T) {
			e, tels, outs, cleanup := supAllocFleet(t, 64, tc.wired)
			defer cleanup()
			if avg := testing.AllocsPerRun(100, func() {
				if err := e.StepAll(tels, outs); err != nil {
					t.Fatal(err)
				}
			}); avg != 0 {
				t.Fatalf("supervised StepAll allocates %.1f objects per fleet epoch, want 0", avg)
			}
			if avg := testing.AllocsPerRun(100, func() {
				e.StepLane(0, tels[0])
			}); avg != 0 {
				t.Fatalf("supervised StepLane allocates %.1f objects per step, want 0", avg)
			}
			for i := 0; i < 64; i++ {
				if e.Parked(i) {
					t.Fatalf("lane %d left the fast path during the alloc run", i)
				}
			}
		})
	}
}

// captureSink collects every drained event for post-run comparison.
type captureSink struct {
	mu  sync.Mutex
	evs []obs.Event
}

func (s *captureSink) WriteEvents(batch []obs.Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.evs = append(s.evs, batch...)
	return nil
}

// TestBatchSupervisedObsParity runs one batch-supervised lane and one
// always-scalar reference, each wired to its own fleet plane and event
// bus, through a nominal → fallback → re-engaged arc, and requires the
// two event streams to match field for field — including the sanitized
// measurements, innovation norms, mode/flag bits, and per-loop epochs —
// across the eviction and re-admission seams.
func TestBatchSupervisedObsParity(t *testing.T) {
	base := designedController(t, true)
	mkSide := func() (*supervisor.Supervised, *captureSink, *obs.Bus) {
		c := base.Clone()
		c.Reset()
		sink := &captureSink{}
		bus := obs.NewBus(2048, sink)
		fleet := obs.NewFleet(obs.Options{Bus: bus})
		s := supervisor.New(c, supervisor.Options{
			GraceEpochs:       15,
			FallbackAfter:     6,
			MaxStaleEpochs:    4,
			MinFallbackEpochs: 10,
			ReengageAfter:     8,
		})
		s.SetTargets(2, 6)
		s.SetLoopObs(fleet.Register("lane"))
		return s, sink, bus
	}
	supB, sinkB, busB := mkSide()
	supR, sinkR, busR := mkSide()
	e, id, err := FromSupervised(supB)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	cfgB, cfgR := sim.MidrangeConfig(), sim.MidrangeConfig()
	var tels [1]sim.Telemetry
	var outs [1]sim.Config
	sawParked := false
	for epoch := 0; epoch < 900; epoch++ {
		tel := sim.Telemetry{Epoch: epoch, IPS: 1.7 + rng.Float64()*0.6, PowerW: 5.5 + rng.Float64()}
		if epoch >= 300 && epoch < 330 {
			tel.IPS = math.Inf(1)
		}
		telB, telR := tel, tel
		telB.Config, telR.Config = cfgB, cfgR
		tels[0] = telB
		if err := e.StepAll(tels[:], outs[:]); err != nil {
			t.Fatal(err)
		}
		gotR := supR.Step(telR)
		if outs[0] != gotR {
			t.Fatalf("epoch %d: batch cfg %+v != scalar %+v", epoch, outs[0], gotR)
		}
		cfgB, cfgR = outs[0], gotR
		e.ObserveApply(id, cfgB, nil)
		supR.ObserveApply(cfgR, nil)
		sawParked = sawParked || e.Parked(id)
	}
	if !sawParked {
		t.Fatal("fault window never evicted the lane — parity run is vacuous")
	}
	if e.Parked(id) {
		t.Fatal("lane not re-admitted by end of run")
	}
	if err := busB.Close(); err != nil {
		t.Fatal(err)
	}
	if err := busR.Close(); err != nil {
		t.Fatal(err)
	}
	if len(sinkB.evs) == 0 {
		t.Fatal("no events captured")
	}
	if len(sinkB.evs) != len(sinkR.evs) {
		t.Fatalf("event counts differ: batch %d, scalar %d", len(sinkB.evs), len(sinkR.evs))
	}
	for i := range sinkB.evs {
		a, b := sinkB.evs[i], sinkR.evs[i]
		af := []float64{a.IPSTarget, a.PowerTarget, a.IPS, a.PowerW, a.InnovNorm, a.Guardband}
		bf := []float64{b.IPSTarget, b.PowerTarget, b.IPS, b.PowerW, b.InnovNorm, b.Guardband}
		if !floatsIdentical(af, bf) {
			t.Fatalf("event %d: float fields %v != scalar %v", i, af, bf)
		}
		a.IPSTarget, a.PowerTarget, a.IPS, a.PowerW, a.InnovNorm, a.Guardband = 0, 0, 0, 0, 0, 0
		b.IPSTarget, b.PowerTarget, b.IPS, b.PowerW, b.InnovNorm, b.Guardband = 0, 0, 0, 0, 0, 0
		if a != b {
			t.Fatalf("event %d: %+v != scalar %+v", i, a, b)
		}
	}
}

// FuzzSupervisedBatchVsScalar drives one batch-supervised lane and an
// always-scalar reference through a fuzz-chosen schedule of telemetry
// (including raw-bit floats), target changes, apply failures, and
// resets, requiring Float64bits-identical configurations every epoch
// and identical full state at the end.
func FuzzSupervisedBatchVsScalar(f *testing.F) {
	f.Add([]byte{0}, int64(1))
	f.Add([]byte{5, 1, 2, 3, 4, 250, 9, 9, 9, 9, 17, 0, 0, 0, 0, 0, 0, 4, 1}, int64(42))
	f.Add(append(
		binary.LittleEndian.AppendUint64([]byte{2}, math.Float64bits(math.NaN())),
		binary.LittleEndian.AppendUint64(nil, math.Float64bits(math.Inf(1)))...), int64(7))

	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		base := designedController(t, seed%2 == 0)
		innerB, innerR := base.Clone(), base.Clone()
		innerB.Reset()
		innerR.Reset()
		o := supervisor.Options{
			GraceEpochs:        10,
			FallbackAfter:      5,
			MaxStaleEpochs:     3,
			MinFallbackEpochs:  8,
			ReengageAfter:      4,
			ApplyFallbackAfter: 3,
			DivergenceLimit:    0.3,
		}
		supB := supervisor.New(innerB, o)
		supR := supervisor.New(innerR, o)
		supB.SetTargets(2, 6)
		supR.SetTargets(2, 6)
		e, id, err := FromSupervised(supB)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		f64 := func(off int) float64 {
			var b [8]byte
			for i := 0; i < 8 && off+i < len(data); i++ {
				b[i] = data[off+i]
			}
			return math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
		}
		cfgB, cfgR := sim.MidrangeConfig(), sim.MidrangeConfig()
		epochs := 0
		for off := 0; off < len(data) && epochs < 256; off += 17 {
			op := data[off]
			a, b := f64(off+1), f64(off+9)
			var tel sim.Telemetry
			var aerr error
			switch op % 8 {
			case 0:
				tel.IPS, tel.PowerW = math.NaN(), rng.Float64()*20
			case 1:
				tel.IPS, tel.PowerW = rng.Float64()*4, math.Inf(1)
			case 2:
				tel.IPS, tel.PowerW = a, b // raw fuzz bit patterns
			case 3:
				e.SetTargets(id, a, b)
				supR.SetTargets(a, b)
				tel.IPS, tel.PowerW = rng.Float64()*4, rng.Float64()*10
			case 4:
				aerr = errApplyInject
				tel.IPS, tel.PowerW = rng.Float64()*4, rng.Float64()*10
			case 5:
				e.Reset(id)
				supR.Reset()
				tel.IPS, tel.PowerW = rng.Float64()*4, rng.Float64()*10
			case 6:
				tel.IPS, tel.PowerW = b, a
			default:
				tel.IPS, tel.PowerW = rng.Float64()*5, rng.Float64()*25
			}
			tel.Epoch = epochs
			telB, telR := tel, tel
			telB.Config, telR.Config = cfgB, cfgR
			gotB := e.StepLane(id, telB)
			gotR := supR.Step(telR)
			if gotB != gotR {
				t.Fatalf("epoch %d (op %d): batch cfg %+v != scalar %+v (parked=%v)",
					epochs, op%8, gotB, gotR, e.Parked(id))
			}
			cfgB, cfgR = gotB, gotR
			e.ObserveApply(id, gotB, aerr)
			supR.ObserveApply(gotR, aerr)
			epochs++
		}
		e.Flush(id)
		requireSameSupState(t, "fuzz final", supB.BatchState(), supR.BatchState())
		requireSameRuntime(t, "fuzz final", innerB.BatchState(), innerR.BatchState())
		if gh, wh := e.Health(id), supR.Health(); gh != wh {
			t.Fatalf("fuzz final: health %+v != scalar %+v", gh, wh)
		}
	})
}
