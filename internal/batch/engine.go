package batch

import (
	"errors"
	"fmt"
	"math"

	"mimoctl/internal/core"
	"mimoctl/internal/lqg"
	"mimoctl/internal/sim"
	"mimoctl/internal/sysid"
)

// Fixed problem shape (the paper's plant: Table III knobs, §IV-B2
// outputs, §VI-A2 model dimension). The kernels are hand-specialized
// for it; FromControllers rejects anything else so callers fall back to
// the scalar path.
const (
	Order     = 4 // model states
	Outputs   = 2 // IPS, power
	MaxInputs = 3 // frequency, cache ways, ROB (2-input variant omits ROB)

	// UnrollWidth is the lane-block size StepAll processes per
	// iteration of its main loop; fleets of any size work (a tail loop
	// covers the remainder), the constant only shapes the hot loop.
	UnrollWidth = 4
)

// Per-field lane strides of the structure-of-arrays layout. Every lane
// occupies the same fixed-size slot in each array regardless of its
// input count; 2-input lanes simply leave the tail of input-shaped
// slots unused.
const (
	strideA  = Order * Order         // 16
	strideB  = Order * MaxInputs     // 12
	strideC  = Outputs * Order       // 8
	strideKx = MaxInputs * Order     // 12
	strideKu = MaxInputs * MaxInputs // 9
	strideKz = MaxInputs * Outputs   // 6
	strideLc = Order * Outputs       // 8
	strideTG = (Order + MaxInputs) * Outputs // 14
	strideU  = MaxInputs // uPrev, uss, lastExcess, U0
	strideY  = Outputs   // zInt, ref, lastInnov, Y0
	strideX  = Order     // xhat, xss
)

// Engine holds N controllers' state in contiguous per-field arrays and
// steps them with fused fixed-size kernels. Lane ids are stable: Add
// returns an id that stays valid until Retire, and retired slots are
// reused by later Adds. An Engine is not safe for concurrent use; shard
// fleets across engines for parallelism (each experiment job owns its
// own, exactly as jobs own cloned scalar controllers).
type Engine struct {
	// Design state, lane-major at the strides above.
	a, b, c    []float64
	kx, ku, kz []float64
	lc, tg     []float64
	u0, y0     []float64

	// Runtime state, lane-major.
	xhat, xss               []float64
	uPrev, uss, lastExcess  []float64
	zInt, ref, lastInnov    []float64
	ipsTgt, powTgt          []float64
	cur                     []sim.Config
	health                  []core.Health
	three, antiWindup       []bool
	haveCur, active         []bool

	free []int // retired slots available for reuse
	n    int   // live lanes
	q    quantTables
}

// New returns an empty engine; load lanes with Add or FromControllers.
func New() *Engine {
	return &Engine{q: newQuantTables()}
}

// Len returns the number of live lanes.
func (e *Engine) Len() int { return e.n }

// Slots returns the number of allocated lane slots (live + retired).
// Lane ids are in [0, Slots()); StepAll's telemetry and output slices
// are indexed by lane id, so they must be at least this long.
func (e *Engine) Slots() int { return len(e.active) }

// Active reports whether id addresses a live lane.
func (e *Engine) Active(id int) bool {
	return id >= 0 && id < len(e.active) && e.active[id]
}

func (e *Engine) inputs(id int) int {
	if e.three[id] {
		return 3
	}
	return 2
}

// Add loads one controller snapshot into a lane and returns its id.
// Only the paper's configuration is batchable: ΔU + integral LQG servo,
// model order 4, outputs [IPS, power], 2 or 3 inputs. Anything else —
// ablation variants, foreign shapes — is rejected so the caller keeps
// it on the scalar path.
func (e *Engine) Add(s core.BatchState) (int, error) {
	if err := validateState(s); err != nil {
		return -1, err
	}
	id := e.allocLane()
	e.load(id, s)
	e.active[id] = true
	e.n++
	return id, nil
}

// validateState checks a controller snapshot against the fixed shapes
// the kernels are specialized for.
func validateState(s core.BatchState) error {
	ni := 2
	if s.ThreeInput {
		ni = 3
	}
	if !s.Opts.DeltaU || !s.Opts.Integral {
		return errors.New("batch: only the ΔU+integral servo structure is batchable")
	}
	if s.A == nil || s.A.Rows() != Order || s.A.Cols() != Order ||
		s.B == nil || s.B.Rows() != Order || s.B.Cols() != ni ||
		s.C == nil || s.C.Rows() != Outputs || s.C.Cols() != Order {
		return fmt.Errorf("batch: plant shape not %dx%dx%d", Order, ni, Outputs)
	}
	if s.Kx == nil || s.Kx.Rows() != ni || s.Kx.Cols() != Order ||
		s.Ku == nil || s.Ku.Rows() != ni || s.Ku.Cols() != ni ||
		s.Kz == nil || s.Kz.Rows() != ni || s.Kz.Cols() != Outputs ||
		s.Lc == nil || s.Lc.Rows() != Order || s.Lc.Cols() != Outputs ||
		s.TargetGain == nil || s.TargetGain.Rows() != Order+ni || s.TargetGain.Cols() != Outputs {
		return errors.New("batch: gain shapes do not match the specialized kernels")
	}
	if len(s.Offsets.U0) != ni || len(s.Offsets.Y0) != Outputs {
		return errors.New("batch: operating-point offsets do not match the input shape")
	}
	if len(s.LQG.Xhat) != Order || len(s.LQG.Xss) != Order ||
		len(s.LQG.UPrev) != ni || len(s.LQG.Uss) != ni || len(s.LQG.LastExcess) != ni ||
		len(s.LQG.ZInt) != Outputs || len(s.LQG.Ref) != Outputs || len(s.LQG.LastInnov) != Outputs {
		return errors.New("batch: runtime state does not match the plant shape")
	}
	if s.HaveCur {
		if err := s.Cur.Validate(); err != nil {
			return fmt.Errorf("batch: current config invalid: %w", err)
		}
	}
	return nil
}

// load copies a validated snapshot into lane id's slots.
func (e *Engine) load(id int, s core.BatchState) {
	copyMat(e.a[id*strideA:], s.A)
	copyMat(e.b[id*strideB:], s.B)
	copyMat(e.c[id*strideC:], s.C)
	copyMat(e.kx[id*strideKx:], s.Kx)
	copyMat(e.ku[id*strideKu:], s.Ku)
	copyMat(e.kz[id*strideKz:], s.Kz)
	copyMat(e.lc[id*strideLc:], s.Lc)
	copyMat(e.tg[id*strideTG:], s.TargetGain)
	copy(e.u0[id*strideU:], s.Offsets.U0)
	copy(e.y0[id*strideY:], s.Offsets.Y0)

	copy(e.xhat[id*strideX:], s.LQG.Xhat)
	copy(e.xss[id*strideX:], s.LQG.Xss)
	copy(e.uPrev[id*strideU:], s.LQG.UPrev)
	copy(e.uss[id*strideU:], s.LQG.Uss)
	copy(e.lastExcess[id*strideU:], s.LQG.LastExcess)
	copy(e.zInt[id*strideY:], s.LQG.ZInt)
	copy(e.ref[id*strideY:], s.LQG.Ref)
	copy(e.lastInnov[id*strideY:], s.LQG.LastInnov)
	e.ipsTgt[id], e.powTgt[id] = s.IPSTarget, s.PowerTarget
	e.cur[id] = s.Cur
	e.health[id] = s.Health
	e.three[id] = s.ThreeInput
	e.antiWindup[id] = !s.Opts.DisableAntiWindup
	e.haveCur[id] = s.HaveCur
}

// SetLaneState overwrites an active lane with a fresh controller
// snapshot (design and runtime), reusing the slot. The supervised
// tier's re-admission path uses it to reload a lane from the scalar
// twin that stepped through a fallback excursion.
func (e *Engine) SetLaneState(id int, s core.BatchState) error {
	if !e.Active(id) {
		return fmt.Errorf("batch: lane %d is not active", id)
	}
	if err := validateState(s); err != nil {
		return err
	}
	e.load(id, s)
	return nil
}

// allocLane reuses a retired slot or grows every array by one stride.
func (e *Engine) allocLane() int {
	if k := len(e.free); k > 0 {
		id := e.free[k-1]
		e.free = e.free[:k-1]
		return id
	}
	id := len(e.active)
	e.a = append(e.a, make([]float64, strideA)...)
	e.b = append(e.b, make([]float64, strideB)...)
	e.c = append(e.c, make([]float64, strideC)...)
	e.kx = append(e.kx, make([]float64, strideKx)...)
	e.ku = append(e.ku, make([]float64, strideKu)...)
	e.kz = append(e.kz, make([]float64, strideKz)...)
	e.lc = append(e.lc, make([]float64, strideLc)...)
	e.tg = append(e.tg, make([]float64, strideTG)...)
	e.u0 = append(e.u0, make([]float64, strideU)...)
	e.y0 = append(e.y0, make([]float64, strideY)...)
	e.xhat = append(e.xhat, make([]float64, strideX)...)
	e.xss = append(e.xss, make([]float64, strideX)...)
	e.uPrev = append(e.uPrev, make([]float64, strideU)...)
	e.uss = append(e.uss, make([]float64, strideU)...)
	e.lastExcess = append(e.lastExcess, make([]float64, strideU)...)
	e.zInt = append(e.zInt, make([]float64, strideY)...)
	e.ref = append(e.ref, make([]float64, strideY)...)
	e.lastInnov = append(e.lastInnov, make([]float64, strideY)...)
	e.ipsTgt = append(e.ipsTgt, 0)
	e.powTgt = append(e.powTgt, 0)
	e.cur = append(e.cur, sim.Config{})
	e.health = append(e.health, core.Health{})
	e.three = append(e.three, false)
	e.antiWindup = append(e.antiWindup, false)
	e.haveCur = append(e.haveCur, false)
	e.active = append(e.active, false)
	return id
}

// Retire removes a lane; its id becomes invalid and the slot is reused
// by a later Add. Retiring mid-epoch is safe: StepAll skips the slot
// from the next call on.
func (e *Engine) Retire(id int) error {
	if !e.Active(id) {
		return fmt.Errorf("batch: lane %d is not active", id)
	}
	e.active[id] = false
	e.free = append(e.free, id)
	e.n--
	return nil
}

// FromControllers loads a fleet of scalar controllers into a fresh
// engine; lane i holds ctrls[i]. Controllers with an attached flight
// recorder are rejected (the batch path does not record), as is any
// shape the kernels are not specialized for.
func FromControllers(ctrls []*core.MIMOController) (*Engine, error) {
	e := New()
	for i, mc := range ctrls {
		if mc.FlightRecorder() != nil {
			return nil, fmt.Errorf("batch: controller %d has a flight recorder attached", i)
		}
		if _, err := e.Add(mc.BatchState()); err != nil {
			return nil, fmt.Errorf("batch: controller %d: %w", i, err)
		}
	}
	return e, nil
}

// FromController loads a single controller, returning its lane id.
func FromController(mc *core.MIMOController) (*Engine, int, error) {
	if mc.FlightRecorder() != nil {
		return nil, -1, errors.New("batch: controller has a flight recorder attached")
	}
	e := New()
	id, err := e.Add(mc.BatchState())
	if err != nil {
		return nil, -1, err
	}
	return e, id, nil
}

// ExtractTo stores lane id's runtime state back into mc, which must
// have the shape the lane was loaded from. The lane stays live.
func (e *Engine) ExtractTo(id int, mc *core.MIMOController) error {
	if !e.Active(id) {
		return fmt.Errorf("batch: lane %d is not active", id)
	}
	ni := e.inputs(id)
	s := core.BatchState{
		ThreeInput: e.three[id],
		LQG: lqg.RuntimeState{
			Xhat:       append([]float64(nil), e.xhat[id*strideX:id*strideX+Order]...),
			Xss:        append([]float64(nil), e.xss[id*strideX:id*strideX+Order]...),
			UPrev:      append([]float64(nil), e.uPrev[id*strideU:id*strideU+ni]...),
			Uss:        append([]float64(nil), e.uss[id*strideU:id*strideU+ni]...),
			LastExcess: append([]float64(nil), e.lastExcess[id*strideU:id*strideU+ni]...),
			ZInt:       append([]float64(nil), e.zInt[id*strideY:id*strideY+Outputs]...),
			Ref:        append([]float64(nil), e.ref[id*strideY:id*strideY+Outputs]...),
			LastInnov:  append([]float64(nil), e.lastInnov[id*strideY:id*strideY+Outputs]...),
		},
		IPSTarget:   e.ipsTgt[id],
		PowerTarget: e.powTgt[id],
		Cur:         e.cur[id],
		HaveCur:     e.haveCur[id],
		Health:      e.health[id],
	}
	return mc.SetBatchState(s)
}

// Offsets returns copies of lane id's operating-point offsets.
func (e *Engine) Offsets(id int) sysid.Offsets {
	ni := e.inputs(id)
	return sysid.Offsets{
		U0: append([]float64(nil), e.u0[id*strideU:id*strideU+ni]...),
		Y0: append([]float64(nil), e.y0[id*strideY:id*strideY+Outputs]...),
	}
}

// SetTargets updates lane id's output references with the scalar path's
// TrySetTargets semantics: non-finite or negative targets are rejected,
// counted in the lane's health, and leave the previous references in
// effect.
func (e *Engine) SetTargets(id int, ips, power float64) error {
	if !e.Active(id) {
		return fmt.Errorf("batch: lane %d is not active", id)
	}
	return e.trySetTargets(id, ips, power)
}

func (e *Engine) trySetTargets(id int, ips, power float64) error {
	if math.IsNaN(ips) || math.IsInf(ips, 0) || math.IsNaN(power) || math.IsInf(power, 0) {
		e.health[id].TargetErrors++
		return fmt.Errorf("batch: non-finite targets (%v BIPS, %v W)", ips, power)
	}
	if ips < 0 || power < 0 {
		e.health[id].TargetErrors++
		return fmt.Errorf("batch: negative targets (%v BIPS, %v W)", ips, power)
	}
	y0 := e.y0[id*strideY : id*strideY+Outputs : id*strideY+Outputs]
	ref := e.ref[id*strideY : id*strideY+Outputs : id*strideY+Outputs]
	r0 := ips - y0[0]
	r1 := power - y0[1]
	ref[0], ref[1] = r0, r1
	// SetReference: [x_ss; u_ss] = targetGain · r, row by row in
	// MulVecInto's accumulation order.
	ni := e.inputs(id)
	tg := e.tg[id*strideTG : id*strideTG+(Order+ni)*Outputs]
	xss := e.xss[id*strideX : id*strideX+Order : id*strideX+Order]
	uss := e.uss[id*strideU : id*strideU+ni : id*strideU+ni]
	for r := 0; r < Order+ni; r++ {
		var s float64
		s += tg[r*2] * r0
		s += tg[r*2+1] * r1
		if r < Order {
			xss[r] = s
		} else {
			uss[r-Order] = s
		}
	}
	e.ipsTgt[id], e.powTgt[id] = ips, power
	return nil
}

// Targets returns lane id's current references.
func (e *Engine) Targets(id int) (ips, power float64) {
	return e.ipsTgt[id], e.powTgt[id]
}

// Health returns lane id's absorbed-error counters.
func (e *Engine) Health(id int) core.Health { return e.health[id] }

// Config returns the configuration lane id last settled on.
func (e *Engine) Config(id int) sim.Config { return e.cur[id] }

// Reset clears lane id's runtime state exactly as the scalar Reset
// does: estimator, integrators, previous input, and health are zeroed;
// the stored targets are re-applied.
func (e *Engine) Reset(id int) {
	zero(e.xhat[id*strideX : id*strideX+Order])
	zero(e.xss[id*strideX : id*strideX+Order])
	zero(e.uPrev[id*strideU : id*strideU+MaxInputs])
	zero(e.uss[id*strideU : id*strideU+MaxInputs])
	zero(e.lastExcess[id*strideU : id*strideU+MaxInputs])
	zero(e.zInt[id*strideY : id*strideY+Outputs])
	zero(e.ref[id*strideY : id*strideY+Outputs])
	zero(e.lastInnov[id*strideY : id*strideY+Outputs])
	e.haveCur[id] = false
	e.health[id] = core.Health{}
	_ = e.trySetTargets(id, e.ipsTgt[id], e.powTgt[id])
}

// StepAll advances every live lane one control epoch: lane i consumes
// tels[i] and its chosen configuration is stored into out[i]. Both
// slices are indexed by lane id and must be at least Slots() long;
// retired slots are skipped and their out entries left untouched.
// StepAll performs no heap allocation.
func (e *Engine) StepAll(tels []sim.Telemetry, out []sim.Config) error {
	m := len(e.active)
	if len(tels) < m || len(out) < m {
		return fmt.Errorf("batch: need %d telemetry/output slots, have %d/%d", m, len(tels), len(out))
	}
	e.stepRange(0, m, tels, out)
	return nil
}

// stepRange advances the live lanes in slot range [lo, hi). Lanes are
// fully independent, so disjoint ranges may run concurrently (the
// sharded driver relies on this).
func (e *Engine) stepRange(lo, hi int, tels []sim.Telemetry, out []sim.Config) {
	base := lo
	for ; base+UnrollWidth <= hi; base += UnrollWidth {
		for i := base; i < base+UnrollWidth; i++ {
			if !e.active[i] {
				continue
			}
			// The shape dispatch is written out here rather than through
			// step(): the two-way call chain is too large to inline, and
			// this loop is the fleet hot path.
			if e.three[i] {
				out[i] = e.step3(i, &tels[i])
			} else {
				out[i] = e.step2(i, &tels[i])
			}
		}
	}
	for i := base; i < hi; i++ {
		if e.active[i] {
			out[i] = e.step(i, &tels[i])
		}
	}
}

// StepLane advances one lane, returning its chosen configuration.
func (e *Engine) StepLane(id int, t sim.Telemetry) sim.Config {
	return e.step(id, &t)
}

func (e *Engine) step(id int, t *sim.Telemetry) sim.Config {
	if e.three[id] {
		return e.step3(id, t)
	}
	return e.step2(id, t)
}

func copyMat(dst []float64, m interface {
	Rows() int
	Cols() int
	At(i, j int) float64
}) {
	rows, cols := m.Rows(), m.Cols()
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			dst[i*cols+j] = m.At(i, j)
		}
	}
}

func zero(v []float64) {
	for i := range v {
		v[i] = 0
	}
}
