package batch

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"mimoctl/internal/core"
	"mimoctl/internal/sim"
	"mimoctl/internal/workloads"
)

// ---- shared designed controllers (designing is the expensive part) ----

var designCache = struct {
	sync.Mutex
	ctrl map[bool]*core.MIMOController
	err  map[bool]error
}{ctrl: map[bool]*core.MIMOController{}, err: map[bool]error{}}

// designedController returns a memoized paper-flow controller for the
// requested input shape. Tests clone it; the cached instance is never
// stepped.
func designedController(t testing.TB, threeInput bool) *core.MIMOController {
	t.Helper()
	designCache.Lock()
	defer designCache.Unlock()
	if c, ok := designCache.ctrl[threeInput]; ok {
		return c
	}
	if err, ok := designCache.err[threeInput]; ok {
		t.Fatalf("DesignMIMO (cached failure): %v", err)
	}
	var training []sim.Workload
	for _, p := range workloads.TrainingSet() {
		training = append(training, p)
	}
	val1, err := workloads.ByName("h264ref")
	if err != nil {
		t.Fatal(err)
	}
	val2, err := workloads.ByName("tonto")
	if err != nil {
		t.Fatal(err)
	}
	ctrl, _, err := core.DesignMIMO(core.DesignSpec{
		ThreeInput:   threeInput,
		Training:     training,
		Validation:   []sim.Workload{val1, val2},
		EpochsPerApp: 1500,
		Seed:         5,
	})
	if err != nil {
		designCache.err[threeInput] = err
		t.Fatalf("DesignMIMO: %v", err)
	}
	designCache.ctrl[threeInput] = ctrl
	return ctrl
}

// ---- bit-level state comparison ----

// floatsIdentical compares float64 slices bit for bit, except that any
// NaN equals any NaN: a NaN's payload/sign can differ between `-1*x`
// and `-x` codegen, and no payload bit can ever change a control
// decision (comparisons involving NaN are payload-independent and the
// quantizer holds the current setting on NaN). Signed zeros are NOT
// conflated — (+0 vs -0) is a real divergence and fails.
func floatsIdentical(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) &&
			!(math.IsNaN(a[i]) && math.IsNaN(b[i])) {
			return false
		}
	}
	return true
}

// requireSameRuntime fails the test unless two controller snapshots
// carry bit-identical runtime state.
func requireSameRuntime(t *testing.T, lane string, got, want core.BatchState) {
	t.Helper()
	if got.Cur != want.Cur || got.HaveCur != want.HaveCur {
		t.Fatalf("%s: config (%+v,%v) != scalar (%+v,%v)", lane, got.Cur, got.HaveCur, want.Cur, want.HaveCur)
	}
	if got.Health != want.Health {
		t.Fatalf("%s: health %+v != scalar %+v", lane, got.Health, want.Health)
	}
	if math.Float64bits(got.IPSTarget) != math.Float64bits(want.IPSTarget) ||
		math.Float64bits(got.PowerTarget) != math.Float64bits(want.PowerTarget) {
		t.Fatalf("%s: targets (%v,%v) != scalar (%v,%v)", lane, got.IPSTarget, got.PowerTarget, want.IPSTarget, want.PowerTarget)
	}
	pairs := []struct {
		name string
		g, w []float64
	}{
		{"xhat", got.LQG.Xhat, want.LQG.Xhat},
		{"uPrev", got.LQG.UPrev, want.LQG.UPrev},
		{"zInt", got.LQG.ZInt, want.LQG.ZInt},
		{"lastExcess", got.LQG.LastExcess, want.LQG.LastExcess},
		{"lastInnov", got.LQG.LastInnov, want.LQG.LastInnov},
		{"ref", got.LQG.Ref, want.LQG.Ref},
		{"xss", got.LQG.Xss, want.LQG.Xss},
		{"uss", got.LQG.Uss, want.LQG.Uss},
	}
	for _, p := range pairs {
		if !floatsIdentical(p.g, p.w) {
			t.Fatalf("%s: %s %v != scalar %v", lane, p.name, p.g, p.w)
		}
	}
}

// randTelemetry draws one epoch of synthetic telemetry: mostly plausible
// operating points, with a tail of extreme magnitudes and non-finite
// sensor values (the scalar path steps through those too, and the batch
// path must reproduce it bit for bit).
func randTelemetry(rng *rand.Rand, epoch int, cfg sim.Config) sim.Telemetry {
	tel := sim.Telemetry{Epoch: epoch, Config: cfg}
	switch rng.Intn(50) {
	case 0:
		tel.IPS = math.NaN()
		tel.PowerW = rng.Float64() * 20
	case 1:
		tel.IPS = rng.Float64() * 4
		tel.PowerW = math.Inf(1)
	case 2:
		tel.IPS = math.Inf(-1)
		tel.PowerW = math.NaN()
	case 3:
		tel.IPS = rng.NormFloat64() * 1e9
		tel.PowerW = rng.NormFloat64() * 1e9
	default:
		tel.IPS = rng.Float64() * 5
		tel.PowerW = rng.Float64() * 25
	}
	return tel
}

// scalarLane pairs a batch lane with the scalar twin it was loaded from.
type scalarLane struct {
	id   int
	ctrl *core.MIMOController
	cfg  sim.Config // configuration fed back as next epoch's telemetry
}

// TestBatchFleetBitIdentical is the differential harness of record: a
// mixed fleet of 2- and 3-input lanes, each seeded from a scalar twin
// warmed up to a distinct runtime state, stepped for thousands of
// randomized epochs (including non-finite telemetry, target changes,
// invalid-target rejections, and resets) with the scalar twin stepped in
// lockstep. Every epoch must pick identical configurations; at regular
// intervals the full runtime state must extract bit-identically.
func TestBatchFleetBitIdentical(t *testing.T) {
	base3 := designedController(t, true)
	base2 := designedController(t, false)
	rng := rand.New(rand.NewSource(42))

	const nLanes = 16
	twins := make([]*core.MIMOController, nLanes)
	for i := range twins {
		var c *core.MIMOController
		if i%2 == 0 {
			c = base3.Clone()
		} else {
			c = base2.Clone()
		}
		c.Reset()
		c.SetTargets(1+rng.Float64()*3, 1+rng.Float64()*20)
		// Warm each twin to a distinct state before snapshotting.
		cfg := sim.MidrangeConfig()
		for k, warm := 0, rng.Intn(200); k < warm; k++ {
			cfg = c.Step(randTelemetry(rng, k, cfg))
		}
		twins[i] = c
	}

	e, err := FromControllers(twins)
	if err != nil {
		t.Fatal(err)
	}
	if e.Len() != nLanes || e.Slots() != nLanes {
		t.Fatalf("Len=%d Slots=%d, want %d", e.Len(), e.Slots(), nLanes)
	}

	// The telemetry Config field only matters before a lane's first step
	// (haveCur), and both paths see the same telemetry, so any fixed
	// starting configuration keeps the pair in lockstep.
	lanes := make([]scalarLane, nLanes)
	for i := range lanes {
		lanes[i] = scalarLane{id: i, ctrl: twins[i], cfg: sim.MidrangeConfig()}
	}

	tels := make([]sim.Telemetry, nLanes)
	outs := make([]sim.Config, nLanes)

	const epochs = 4000
	for ep := 0; ep < epochs; ep++ {
		// Occasional target changes (some invalid: both sides must count
		// the rejection and keep the previous references) and resets.
		for i := range lanes {
			switch rng.Intn(400) {
			case 0:
				ips, pow := rng.Float64()*4, rng.Float64()*25
				lanes[i].ctrl.SetTargets(ips, pow)
				_ = e.SetTargets(lanes[i].id, ips, pow)
			case 1:
				bad := []float64{math.NaN(), math.Inf(1), -1}[rng.Intn(3)]
				lanes[i].ctrl.SetTargets(bad, 2)
				_ = e.SetTargets(lanes[i].id, bad, 2)
			case 2:
				lanes[i].ctrl.Reset()
				e.Reset(lanes[i].id)
				lanes[i].cfg = sim.MidrangeConfig()
			}
			tels[i] = randTelemetry(rng, ep, lanes[i].cfg)
		}
		if err := e.StepAll(tels, outs); err != nil {
			t.Fatal(err)
		}
		for i := range lanes {
			want := lanes[i].ctrl.Step(tels[i])
			if outs[i] != want {
				t.Fatalf("epoch %d lane %d: batch %+v, scalar %+v", ep, i, outs[i], want)
			}
			lanes[i].cfg = outs[i]
		}
		if ep%250 == 249 {
			for i := range lanes {
				dst := lanes[i].ctrl.Clone()
				if err := e.ExtractTo(lanes[i].id, dst); err != nil {
					t.Fatal(err)
				}
				requireSameRuntime(t, fmt.Sprintf("lane %d epoch %d", i, ep), dst.BatchState(), lanes[i].ctrl.BatchState())
			}
		}
	}

	// Targets/Health/Config accessors agree at the end.
	for i := range lanes {
		gi, gp := e.Targets(lanes[i].id)
		wi, wp := lanes[i].ctrl.Targets()
		if gi != wi || gp != wp {
			t.Fatalf("lane %d: targets (%v,%v) != (%v,%v)", i, gi, gp, wi, wp)
		}
		if e.Health(lanes[i].id) != lanes[i].ctrl.Health() {
			t.Fatalf("lane %d: health %+v != %+v", i, e.Health(lanes[i].id), lanes[i].ctrl.Health())
		}
		if e.Config(lanes[i].id) != lanes[i].cfg {
			t.Fatalf("lane %d: config %+v != %+v", i, e.Config(lanes[i].id), lanes[i].cfg)
		}
	}
}

// TestBatchClosedLoopBitIdentical drives a scalar controller and its
// batch lane through two identically seeded processor simulations — the
// real closed loop, where one wrong ULP would compound — and requires
// identical configurations every epoch and identical final state.
func TestBatchClosedLoopBitIdentical(t *testing.T) {
	for _, three := range []bool{true, false} {
		name := "two-input"
		if three {
			name = "three-input"
		}
		t.Run(name, func(t *testing.T) {
			w, err := workloads.ByName("namd")
			if err != nil {
				t.Fatal(err)
			}
			sc := designedController(t, three).Clone()
			sc.Reset()
			sc.SetTargets(core.DefaultIPSTarget, core.DefaultPowerTarget)

			e, id, err := FromController(sc)
			if err != nil {
				t.Fatal(err)
			}

			procA, err := sim.NewProcessor(w, sim.DefaultProcessorOptions(), 77)
			if err != nil {
				t.Fatal(err)
			}
			procB, err := sim.NewProcessor(w, sim.DefaultProcessorOptions(), 77)
			if err != nil {
				t.Fatal(err)
			}

			telA := procA.Step()
			telB := procB.Step()
			for ep := 0; ep < 2500; ep++ {
				cfgA := sc.Step(telA)
				cfgB := e.StepLane(id, telB)
				if cfgA != cfgB {
					t.Fatalf("epoch %d: scalar %+v, batch %+v", ep, cfgA, cfgB)
				}
				procA.Apply(cfgA)
				procB.Apply(cfgB)
				telA = procA.Step()
				telB = procB.Step()
			}
			dst := sc.Clone()
			if err := e.ExtractTo(id, dst); err != nil {
				t.Fatal(err)
			}
			requireSameRuntime(t, "closed-loop", dst.BatchState(), sc.BatchState())
		})
	}
}
