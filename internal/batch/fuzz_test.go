package batch

import (
	"encoding/binary"
	"math"
	"testing"

	"mimoctl/internal/sim"
)

// FuzzBatchVsScalarStep is the differential fuzz target: raw bytes are
// decoded into a telemetry stream (arbitrary float64 bit patterns — NaN
// and Inf sentinels included — plus target changes and resets), and a
// scalar controller and its batch lane consume the stream in lockstep.
// Any configuration divergence, or any non-NaN-equivalent bit difference
// in the extracted runtime state, is a crash.
func FuzzBatchVsScalarStep(f *testing.F) {
	f.Add([]byte{0}, true)
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17}, false)
	f.Add(append(
		binary.LittleEndian.AppendUint64(nil, math.Float64bits(math.NaN())),
		binary.LittleEndian.AppendUint64(nil, math.Float64bits(math.Inf(1)))...), true)

	f.Fuzz(func(t *testing.T, data []byte, three bool) {
		sc := designedController(t, three).Clone()
		sc.Reset()
		sc.SetTargets(2.5, 15)
		e, id, err := FromController(sc)
		if err != nil {
			t.Fatal(err)
		}

		// Decode the byte stream into epochs: one opcode byte, then up
		// to 16 bytes of float64 payloads (zero-padded at the tail).
		f64 := func(off int) float64 {
			var b [8]byte
			for i := 0; i < 8 && off+i < len(data); i++ {
				b[i] = data[off+i]
			}
			return math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
		}
		cfg := sim.MidrangeConfig()
		epochs := 0
		for off := 0; off < len(data) && epochs < 256; off += 17 {
			op := data[off]
			a, b := f64(off+1), f64(off+9)
			switch op % 8 {
			case 0: // target change, both sides (possibly rejected by both)
				sc.SetTargets(a, b)
				_ = e.SetTargets(id, a, b)
			case 1: // reset, both sides
				sc.Reset()
				e.Reset(id)
				cfg = sim.MidrangeConfig()
			default:
				tel := sim.Telemetry{Epoch: epochs, IPS: a, PowerW: b, Config: cfg}
				got := e.StepLane(id, tel)
				want := sc.Step(tel)
				if got != want {
					t.Fatalf("epoch %d: batch %+v, scalar %+v (IPS=%v PowerW=%v)", epochs, got, want, a, b)
				}
				cfg = got
			}
			epochs++
		}

		dst := sc.Clone()
		if err := e.ExtractTo(id, dst); err != nil {
			t.Fatal(err)
		}
		requireSameRuntime(t, "fuzz", dst.BatchState(), sc.BatchState())
	})
}
