// Package batch steps fleets of MIMO LQG controllers through fused,
// hand-specialized fixed-size kernels over a structure-of-arrays state
// layout. The arithmetic reproduces the scalar path
// (core.MIMOController.Step over lqg.Controller.Step) operation for
// operation, so batched and scalar stepping produce bit-identical
// float64 state and identical knob decisions; the differential test
// harness in this package enforces that across randomized epochs and
// fuzzed state.
package batch

import (
	"math"

	"mimoctl/internal/core"
	"mimoctl/internal/sim"
)

// The paper's Table III knob-table sizes. When the simulator's tables
// match these (they always do today), the kernels take constant-size
// quantizer paths whose window loops and level lookups compile without
// slice-length indirection; any other sizes fall back to the generic
// slice code below, which is equally exact.
const (
	nFreq  = 16
	nROB   = 8
	nCache = 4
)

// quantTables snapshots the simulator's knob-level tables at engine
// construction, plus the uniform-grid parameters the fast quantizer
// path uses to replace the scalar full scan with a 3-wide window.
type quantTables struct {
	freq  []float64 // ascending GHz (16 levels in the paper's Table III)
	rob   []float64 // ascending entries (8 levels)
	cache []float64 // ascending L2 ways (4 levels)

	freqBase, freqInvStep float64
	robBase, robInvStep   float64
	freqFast, robFast     bool

	// Constant-size copies for the specialized kernel path; valid (and
	// equal to the slices above) only when special is true.
	freqA   [nFreq]float64
	robA    [nROB]float64
	cacheA  [nCache]float64
	special bool
}

func newQuantTables() quantTables {
	t := quantTables{
		freq:  sim.FreqLevels(),
		rob:   sim.ROBLevels(),
		cache: sim.CacheWaysLevels(),
	}
	t.freqBase, t.freqInvStep, t.freqFast = uniformGrid(t.freq)
	t.robBase, t.robInvStep, t.robFast = uniformGrid(t.rob)
	t.special = t.freqFast && t.robFast &&
		len(t.freq) == nFreq && len(t.rob) == nROB && len(t.cache) == nCache
	if t.special {
		copy(t.freqA[:], t.freq)
		copy(t.robA[:], t.rob)
		copy(t.cacheA[:], t.cache)
	}
	return t
}

// uniformGrid fits base + i/invStep to the levels and reports whether
// every level is within a quarter step of that grid — the condition
// under which the arithmetic candidate index in quantUniform is
// guaranteed to land within one slot of the true nearest level.
func uniformGrid(levels []float64) (base, invStep float64, ok bool) {
	n := len(levels)
	if n < 2 {
		return 0, 0, false
	}
	h := (levels[n-1] - levels[0]) / float64(n-1)
	if !(h > 0) || math.IsInf(h, 0) {
		return 0, 0, false
	}
	for i, l := range levels {
		if math.Abs(l-(levels[0]+h*float64(i))) > 0.25*h {
			return 0, 0, false
		}
	}
	return levels[0], 1 / h, true
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// scanIndex is a verbatim transcription of sim's hysteresisIndex: the
// nearest level wins unless the request stays within (0.5+margin)
// boundary-local steps of the current one. It is the reference the fast
// path defers to for non-finite requests and window-edge ambiguity.
func scanIndex(levels []float64, curIdx int, req, margin float64) int {
	if curIdx < 0 || curIdx >= len(levels) {
		curIdx = 0
	}
	best := curIdx
	bd := absf(levels[curIdx] - req)
	for i, l := range levels {
		if d := absf(l - req); d < bd {
			best, bd = i, d
		}
	}
	if best == curIdx {
		return curIdx
	}
	lo, hi := curIdx, best
	if lo > hi {
		lo, hi = hi, lo
	}
	step := (levels[hi] - levels[lo]) / float64(hi-lo)
	if absf(req-levels[curIdx]) <= (0.5+margin)*step {
		return curIdx
	}
	return best
}

// quantUniform computes scanIndex over a uniform ascending grid without
// scanning it: an arithmetic candidate index plus a 3-wide comparison
// window reproduces the scan's first-minimum-wins tie handling exactly.
// The result is proven equal to scanIndex (and therefore to the scalar
// path) by TestQuantMatchesSim and FuzzQuantHysteresis.
//
// It returns scanIndex's answer bit-for-bit because:
//   - the window comparisons use the same |level-req| expressions and
//     the same strict-improvement ordering, seeded with the same
//     current-level distance;
//   - for finite requests the true nearest index is within one slot of
//     the arithmetic candidate (uniformGrid verified the grid), so all
//     minimum-distance levels lie inside the window — except possibly
//     past its left edge, in which case the full scan is used;
//   - NaN and ±Inf requests fall through to the full scan, preserving
//     the scan's hold-current-on-NaN sentinel behaviour.
//
// math.Abs replaces the scalar path's branchy absf inside the window:
// the two differ only on the sign of a zero, which cannot change any
// distance comparison, so the selected index is unaffected.
// n is passed explicitly (always len(levels)) so the specialized kernel
// call sites can supply it as a compile-time constant.
func quantUniform(levels []float64, base, invStep float64, n, curIdx int, req, margin float64) int {
	if uint(curIdx) >= uint(n) {
		curIdx = 0
	}
	t := (req-base)*invStep + 0.5
	k := int(t)
	if !(t >= 1) {
		if !(t >= -1e18) { // NaN or -Inf: the scan holds the current level
			return scanIndex(levels, curIdx, req, margin)
		}
		k = 0
	} else if k >= n {
		if t > 1e18 { // +Inf
			return scanIndex(levels, curIdx, req, margin)
		}
		k = n - 1
	}
	best := curIdx
	bd := math.Abs(levels[curIdx] - req)
	lo := k - 1
	if lo < 0 {
		lo = 0
	}
	hi := k + 1
	if hi > n-1 {
		hi = n - 1
	}
	for i := lo; i <= hi; i++ {
		if d := math.Abs(levels[i] - req); d < bd {
			best, bd = i, d
		}
	}
	if best == lo && lo > 0 {
		// The winner sits on the window's left edge: an exact-tie level
		// further left could be the scan's first minimum. Rare (it needs
		// an off-by-one arithmetic candidate and an exact midpoint);
		// defer to the scan rather than reason about it.
		return scanIndex(levels, curIdx, req, margin)
	}
	if best == curIdx {
		return curIdx
	}
	l, h := curIdx, best
	if l > h {
		l, h = h, l
	}
	step := (levels[h] - levels[l]) / float64(h-l)
	if math.Abs(req-levels[curIdx]) <= (0.5+margin)*step {
		return curIdx
	}
	return best
}

// quantCache4 is scanIndex unrolled over exactly four levels, used by
// the specialized kernel path for the L2-ways grid (ascending order).
// The scan structure — seed with the current level's distance, visit
// levels in ascending-index order, strict-improvement updates, then the
// boundary-local hysteresis tail — is identical, so the selected index
// always matches; math.Abs vs the scalar absf differs only on the sign
// of a zero, which cannot change any distance comparison.
func quantCache4(lv *[nCache]float64, curAsc int, req, margin float64) int {
	if uint(curAsc) >= nCache {
		curAsc = 0
	}
	best := curAsc
	bd := math.Abs(lv[curAsc] - req)
	if d := math.Abs(lv[0] - req); d < bd {
		best, bd = 0, d
	}
	if d := math.Abs(lv[1] - req); d < bd {
		best, bd = 1, d
	}
	if d := math.Abs(lv[2] - req); d < bd {
		best, bd = 2, d
	}
	if d := math.Abs(lv[3] - req); d < bd {
		best, bd = 3, d
	}
	if best == curAsc {
		return curAsc
	}
	l, h := curAsc, best
	if l > h {
		l, h = h, l
	}
	step := (lv[h] - lv[l]) / float64(h-l)
	if math.Abs(req-lv[curAsc]) <= (0.5+margin)*step {
		return curAsc
	}
	return best
}

// quantFreq/quantROB pick the fast path when the grid verified uniform.
// The kernels bypass these wrappers on the specialized path and call
// quantUniform/quantCache4 directly with constant sizes; these remain
// the generic entry points (and the fallback when special is false).
func (t *quantTables) quantFreq(curIdx int, req, margin float64) int {
	if t.freqFast {
		return quantUniform(t.freq, t.freqBase, t.freqInvStep, len(t.freq), curIdx, req, margin)
	}
	return scanIndex(t.freq, curIdx, req, margin)
}

func (t *quantTables) quantROB(curIdx int, req, margin float64) int {
	if t.robFast {
		return quantUniform(t.rob, t.robBase, t.robInvStep, len(t.rob), curIdx, req, margin)
	}
	return scanIndex(t.rob, curIdx, req, margin)
}

// quantCacheAsc quantizes in ascending-ways space; the caller converts
// to and from the descending CacheSettings index exactly as sim's
// hysteresisIndexDesc does. Four levels: the scan is already cheap.
func (t *quantTables) quantCacheAsc(curAsc int, req, margin float64) int {
	if t.special {
		return quantCache4(&t.cacheA, curAsc, req, margin)
	}
	return scanIndex(t.cache, curAsc, req, margin)
}

// qMargin is the only hysteresis margin the kernels ever quantize with
// (the scalar path hardcodes the same constant in configFromKnobs), so
// the fused fast path below folds it at compile time.
const qMargin = core.ActuatorHysteresis

// quant3 quantizes all three knob requests of one 3-input lane in a
// single call: quantUniform's candidate-window computation transcribed
// for the 16-level frequency and 8-level ROB grids, and quantCache4's
// unrolled scan for the 4-level ways grid. Fusing them means the step
// kernels pay one call per lane instead of three; the per-grid logic is
// otherwise identical statement for statement, with the same scanIndex
// deferrals, and TestQuantFusedMatchesOutlined plus the kernel
// differential harness pin the equivalence. Requires t.special.
//
// ciAsc is in ascending-ways space, like quantCacheAsc.
func (t *quantTables) quant3(cur sim.Config, ua0, ua1, ua2 float64) (fi, ciAsc, ri int) {
	// Frequency: 16-level uniform grid.
	{
		c := cur.FreqIdx
		if uint(c) >= nFreq {
			c = 0
		}
		x := (ua0-t.freqBase)*t.freqInvStep + 0.5
		k := int(x)
		ok := true
		if !(x >= 1) {
			if !(x >= -1e18) { // NaN or -Inf: the scan holds the current level
				ok = false
			}
			k = 0
		} else if k >= nFreq {
			if x > 1e18 { // +Inf
				ok = false
			}
			k = nFreq - 1
		}
		if ok {
			best := c
			bd := math.Abs(t.freqA[c] - ua0)
			lo := k - 1
			if lo < 0 {
				lo = 0
			}
			hi := k + 1
			if hi > nFreq-1 {
				hi = nFreq - 1
			}
			for i := lo; i <= hi; i++ {
				if d := math.Abs(t.freqA[i] - ua0); d < bd {
					best, bd = i, d
				}
			}
			switch {
			case best == lo && lo > 0: // left-edge winner: defer to the scan
				fi = scanIndex(t.freq, c, ua0, qMargin)
			case best == c:
				fi = c
			default:
				l, h := c, best
				if l > h {
					l, h = h, l
				}
				step := (t.freqA[h] - t.freqA[l]) / float64(h-l)
				if math.Abs(ua0-t.freqA[c]) <= (0.5+qMargin)*step {
					fi = c
				} else {
					fi = best
				}
			}
		} else {
			fi = scanIndex(t.freq, c, ua0, qMargin)
		}
	}

	// L2 ways: 4 levels, fully unrolled scan (ascending space).
	{
		c := nCache - 1 - cur.CacheIdx
		if uint(c) >= nCache {
			c = 0
		}
		best := c
		bd := math.Abs(t.cacheA[c] - ua1)
		if d := math.Abs(t.cacheA[0] - ua1); d < bd {
			best, bd = 0, d
		}
		if d := math.Abs(t.cacheA[1] - ua1); d < bd {
			best, bd = 1, d
		}
		if d := math.Abs(t.cacheA[2] - ua1); d < bd {
			best, bd = 2, d
		}
		if d := math.Abs(t.cacheA[3] - ua1); d < bd {
			best, bd = 3, d
		}
		if best == c {
			ciAsc = c
		} else {
			l, h := c, best
			if l > h {
				l, h = h, l
			}
			step := (t.cacheA[h] - t.cacheA[l]) / float64(h-l)
			if math.Abs(ua1-t.cacheA[c]) <= (0.5+qMargin)*step {
				ciAsc = c
			} else {
				ciAsc = best
			}
		}
	}

	// ROB: 8-level uniform grid (requests arrive in entry units).
	{
		c := cur.ROBIdx
		if uint(c) >= nROB {
			c = 0
		}
		x := (ua2-t.robBase)*t.robInvStep + 0.5
		k := int(x)
		ok := true
		if !(x >= 1) {
			if !(x >= -1e18) {
				ok = false
			}
			k = 0
		} else if k >= nROB {
			if x > 1e18 {
				ok = false
			}
			k = nROB - 1
		}
		if ok {
			best := c
			bd := math.Abs(t.robA[c] - ua2)
			lo := k - 1
			if lo < 0 {
				lo = 0
			}
			hi := k + 1
			if hi > nROB-1 {
				hi = nROB - 1
			}
			for i := lo; i <= hi; i++ {
				if d := math.Abs(t.robA[i] - ua2); d < bd {
					best, bd = i, d
				}
			}
			switch {
			case best == lo && lo > 0:
				ri = scanIndex(t.rob, c, ua2, qMargin)
			case best == c:
				ri = c
			default:
				l, h := c, best
				if l > h {
					l, h = h, l
				}
				step := (t.robA[h] - t.robA[l]) / float64(h-l)
				if math.Abs(ua2-t.robA[c]) <= (0.5+qMargin)*step {
					ri = c
				} else {
					ri = best
				}
			}
		} else {
			ri = scanIndex(t.rob, c, ua2, qMargin)
		}
	}
	return fi, ciAsc, ri
}

// quant2 is quant3 for the 2-input lanes: frequency and cache ways only
// (their ROB knob holds, so nothing to quantize). Same transcription,
// same deferrals, same tests.
func (t *quantTables) quant2(cur sim.Config, ua0, ua1 float64) (fi, ciAsc int) {
	{
		c := cur.FreqIdx
		if uint(c) >= nFreq {
			c = 0
		}
		x := (ua0-t.freqBase)*t.freqInvStep + 0.5
		k := int(x)
		ok := true
		if !(x >= 1) {
			if !(x >= -1e18) {
				ok = false
			}
			k = 0
		} else if k >= nFreq {
			if x > 1e18 {
				ok = false
			}
			k = nFreq - 1
		}
		if ok {
			best := c
			bd := math.Abs(t.freqA[c] - ua0)
			lo := k - 1
			if lo < 0 {
				lo = 0
			}
			hi := k + 1
			if hi > nFreq-1 {
				hi = nFreq - 1
			}
			for i := lo; i <= hi; i++ {
				if d := math.Abs(t.freqA[i] - ua0); d < bd {
					best, bd = i, d
				}
			}
			switch {
			case best == lo && lo > 0:
				fi = scanIndex(t.freq, c, ua0, qMargin)
			case best == c:
				fi = c
			default:
				l, h := c, best
				if l > h {
					l, h = h, l
				}
				step := (t.freqA[h] - t.freqA[l]) / float64(h-l)
				if math.Abs(ua0-t.freqA[c]) <= (0.5+qMargin)*step {
					fi = c
				} else {
					fi = best
				}
			}
		} else {
			fi = scanIndex(t.freq, c, ua0, qMargin)
		}
	}

	{
		c := nCache - 1 - cur.CacheIdx
		if uint(c) >= nCache {
			c = 0
		}
		best := c
		bd := math.Abs(t.cacheA[c] - ua1)
		if d := math.Abs(t.cacheA[0] - ua1); d < bd {
			best, bd = 0, d
		}
		if d := math.Abs(t.cacheA[1] - ua1); d < bd {
			best, bd = 1, d
		}
		if d := math.Abs(t.cacheA[2] - ua1); d < bd {
			best, bd = 2, d
		}
		if d := math.Abs(t.cacheA[3] - ua1); d < bd {
			best, bd = 3, d
		}
		if best == c {
			ciAsc = c
		} else {
			l, h := c, best
			if l > h {
				l, h = h, l
			}
			step := (t.cacheA[h] - t.cacheA[l]) / float64(h-l)
			if math.Abs(ua1-t.cacheA[c]) <= (0.5+qMargin)*step {
				ciAsc = c
			} else {
				ciAsc = best
			}
		}
	}
	return fi, ciAsc
}
