package batch

import (
	"math/rand"
	"testing"

	"mimoctl/internal/sim"
)

// fleetEngine builds an N-lane engine of warmed-up 3-input clones plus
// the telemetry/output slices StepAll consumes.
func fleetEngine(tb testing.TB, n int) (*Engine, []sim.Telemetry, []sim.Config) {
	tb.Helper()
	base := designedController(tb, true)
	rng := rand.New(rand.NewSource(3))
	e := New()
	for i := 0; i < n; i++ {
		c := base.Clone()
		c.Reset()
		c.SetTargets(1+rng.Float64()*3, 1+rng.Float64()*20)
		if _, err := e.Add(c.BatchState()); err != nil {
			tb.Fatal(err)
		}
	}
	tels := make([]sim.Telemetry, n)
	for i := range tels {
		tels[i] = sim.Telemetry{
			IPS:    rng.Float64() * 5,
			PowerW: rng.Float64() * 25,
			Config: sim.MidrangeConfig(),
		}
	}
	return e, tels, make([]sim.Config, n)
}

// TestBatchStepZeroAlloc pins the fused per-loop step at 0 allocs/op:
// stepping a whole fleet must not touch the heap (DESIGN.md §7 zero-alloc
// discipline, extended to the batch path).
func TestBatchStepZeroAlloc(t *testing.T) {
	e, tels, outs := fleetEngine(t, 64)
	if avg := testing.AllocsPerRun(100, func() {
		if err := e.StepAll(tels, outs); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("StepAll allocates %.1f objects per fleet step, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		e.StepLane(0, tels[0])
	}); avg != 0 {
		t.Fatalf("StepLane allocates %.1f objects per step, want 0", avg)
	}
}

// BenchmarkBatchStep measures the fused kernel's per-loop cost over a
// 1024-lane fleet. CI gates this benchmark at 0 allocs/op via benchcmp.
func BenchmarkBatchStep(b *testing.B) {
	e, tels, outs := fleetEngine(b, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.StepAll(tels, outs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	nsPerLane := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / 1024
	b.ReportMetric(nsPerLane, "ns/lanestep")
}

// BenchmarkBatchSupervisedStep measures the fused supervised kernel
// (sanitize → LQG step → monitor EMAs → quantize) per lane over a
// 1024-lane fleet warmed past its grace period. CI gates this benchmark
// at 0 allocs/op via benchcmp.
func BenchmarkBatchSupervisedStep(b *testing.B) {
	e, tels, outs, cleanup := supAllocFleet(b, 1024, false)
	defer cleanup()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.StepAll(tels, outs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	nsPerLane := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / 1024
	b.ReportMetric(nsPerLane, "ns/lanestep")
}
