package batch

import (
	"errors"
	"fmt"
	"math"

	"mimoctl/internal/core"
	"mimoctl/internal/health"
	"mimoctl/internal/obs"
	"mimoctl/internal/sim"
	"mimoctl/internal/supervisor"
)

// SupEngine is the supervised lane tier: it lays the supervisor's
// per-loop nominal-path state (targets, last-good sanitize values,
// staleness counters, alarm EMAs, sick streak, grace) out as
// structure-of-arrays alongside an inner Engine's Kalman/LQG lanes and
// fuses sanitize → inner step → divergence monitoring → quantize into
// one pass per lane, so a nominal supervised epoch touches zero mat
// calls and zero heap allocations.
//
// The fused kernel replicates exactly one scalar code path:
// supervisor.Supervised.Step with mode engaged, actuation healthy, no
// adapter, and no flight recorder. Everything else — fallback entry,
// apply-retry/backoff, re-engagement hysteresis — is rare by
// construction in a healthy fleet and is NOT replicated: the lane is
// evicted, bit-identically mid-run, to the scalar Supervised it was
// admitted from (the "twin"), which replays the epoch from exactly the
// pre-epoch state and keeps stepping scalar until the supervisor is
// back on the nominal path, when the lane is re-admitted. The
// differential suite (supdiff_test.go, FuzzSupervisedBatchVsScalar)
// proves the whole arrangement Float64bits-identical to an always-
// scalar supervised loop across fault-injected runs.
//
// Like the bare-MIMO tier, batched stepping does not drive telemetry
// instruments (counters/gauges bound via SetTelemetry/BindTelemetry);
// supervisor.Health counters stay exact. Epochs stepped by an evicted
// twin drive instruments exactly as scalar epochs do.
type SupEngine struct {
	mimo *Engine

	// Supervisor SoA state, indexed by lane id (same ids as mimo).
	opts                               []supervisor.Options
	supIPSTgt, supPowTgt               []float64
	goodIPS, goodPower, goodL1, goodL2 []float64
	haveGood                           []bool
	staleIPS, stalePower               []int
	grace                              []int
	emaInnov, emaErr                   []float64
	sickStreak                         []int
	lastReq                            []sim.Config
	haveReq                            []bool
	fallbackEpochs, healthyStreak      []int
	health                             []supervisor.Health

	// Scalar-side handles per lane.
	twin    []*supervisor.Supervised
	innerMC []*core.MIMOController
	mon     []*health.Monitor
	loop    []*obs.Loop
	loopBus []*obs.Bus
	parked  []bool

	// Per-epoch event batching: events for bus are accumulated across
	// one StepAll and shipped in a single bulk reservation. The sharded
	// driver uses one scratch per shard instead.
	events      []obs.Event
	shardEvents [][]obs.Event
	bus         *obs.Bus
}

// NewSupervised returns an empty supervised engine.
func NewSupervised() *SupEngine {
	return &SupEngine{mimo: New()}
}

// Inner exposes the underlying bare-MIMO engine (shared lane ids).
func (e *SupEngine) Inner() *Engine { return e.mimo }

// Len returns the number of live lanes.
func (e *SupEngine) Len() int { return e.mimo.Len() }

// Slots returns the number of allocated lane slots; see Engine.Slots.
func (e *SupEngine) Slots() int { return e.mimo.Slots() }

// Active reports whether id addresses a live lane.
func (e *SupEngine) Active(id int) bool { return e.mimo.Active(id) }

// Parked reports whether lane id is currently evicted to its scalar
// twin (it still steps — scalar — through StepAll/StepLane).
func (e *SupEngine) Parked(id int) bool { return e.parked[id] }

// Add admits one supervised controller as a batch lane and returns its
// id. Only the nominal configuration is admissible: engaged mode with
// healthy actuation, no adaptation loop, no flight recorder (on the
// supervisor or its inner controller), and an inner core.MIMOController
// of a kernel-specialized shape. The supervisor object stays attached
// as the lane's scalar twin for eviction; do not step it directly while
// the lane is live (Flush first).
func (e *SupEngine) Add(s *supervisor.Supervised) (int, error) {
	if s.Adapter() != nil {
		return -1, errors.New("batch: supervised lane has an adaptation loop attached")
	}
	if s.FlightRecorder() != nil {
		return -1, errors.New("batch: supervised lane has a flight recorder attached")
	}
	if !s.Nominal() {
		return -1, errors.New("batch: supervisor is not on the nominal engaged path")
	}
	mc, ok := s.Inner().(*core.MIMOController)
	if !ok {
		return -1, errors.New("batch: inner controller is not a MIMO lane")
	}
	if mc.FlightRecorder() != nil {
		return -1, errors.New("batch: inner controller has a flight recorder attached")
	}
	id, err := e.mimo.Add(mc.BatchState())
	if err != nil {
		return -1, err
	}
	e.ensure(id + 1)
	e.opts[id] = s.RuntimeOptions()
	e.loadSup(id, s.BatchState())
	e.twin[id] = s
	e.innerMC[id] = mc
	e.mon[id] = s.ModelHealth()
	e.loop[id] = s.LoopObs()
	e.loopBus[id] = s.LoopObs().Bus()
	e.parked[id] = false
	if e.bus == nil {
		e.bus = e.loopBus[id]
	}
	return id, nil
}

// FromSupervised loads a single supervised controller into a fresh
// engine, returning its lane id.
func FromSupervised(s *supervisor.Supervised) (*SupEngine, int, error) {
	e := NewSupervised()
	id, err := e.Add(s)
	if err != nil {
		return nil, -1, err
	}
	return e, id, nil
}

// FromSupervisedFleet loads a fleet; lane i holds sups[i].
func FromSupervisedFleet(sups []*supervisor.Supervised) (*SupEngine, error) {
	e := NewSupervised()
	for i, s := range sups {
		if _, err := e.Add(s); err != nil {
			return nil, fmt.Errorf("batch: supervised controller %d: %w", i, err)
		}
	}
	return e, nil
}

// Retire removes a lane (after flushing its state back to the twin);
// the id becomes invalid and the slot is reused by a later Add.
func (e *SupEngine) Retire(id int) error {
	if !e.mimo.Active(id) {
		return fmt.Errorf("batch: lane %d is not active", id)
	}
	e.Flush(id)
	if err := e.mimo.Retire(id); err != nil {
		return err
	}
	e.twin[id], e.innerMC[id] = nil, nil
	e.mon[id], e.loop[id], e.loopBus[id] = nil, nil, nil
	e.parked[id] = false
	return nil
}

// ensure grows the supervisor-side arrays to cover n lane slots.
func (e *SupEngine) ensure(n int) {
	for len(e.parked) < n {
		e.opts = append(e.opts, supervisor.Options{})
		e.supIPSTgt = append(e.supIPSTgt, 0)
		e.supPowTgt = append(e.supPowTgt, 0)
		e.goodIPS = append(e.goodIPS, 0)
		e.goodPower = append(e.goodPower, 0)
		e.goodL1 = append(e.goodL1, 0)
		e.goodL2 = append(e.goodL2, 0)
		e.haveGood = append(e.haveGood, false)
		e.staleIPS = append(e.staleIPS, 0)
		e.stalePower = append(e.stalePower, 0)
		e.grace = append(e.grace, 0)
		e.emaInnov = append(e.emaInnov, 0)
		e.emaErr = append(e.emaErr, 0)
		e.sickStreak = append(e.sickStreak, 0)
		e.lastReq = append(e.lastReq, sim.Config{})
		e.haveReq = append(e.haveReq, false)
		e.fallbackEpochs = append(e.fallbackEpochs, 0)
		e.healthyStreak = append(e.healthyStreak, 0)
		e.health = append(e.health, supervisor.Health{})
		e.twin = append(e.twin, nil)
		e.innerMC = append(e.innerMC, nil)
		e.mon = append(e.mon, nil)
		e.loop = append(e.loop, nil)
		e.loopBus = append(e.loopBus, nil)
		e.parked = append(e.parked, false)
	}
}

// loadSup copies a supervisor snapshot into lane id's SoA slots.
func (e *SupEngine) loadSup(id int, bs supervisor.BatchState) {
	e.supIPSTgt[id], e.supPowTgt[id] = bs.IPSTarget, bs.PowerTarget
	e.goodIPS[id], e.goodPower[id] = bs.GoodIPS, bs.GoodPower
	e.haveGood[id] = bs.HaveGood
	e.staleIPS[id], e.stalePower[id] = bs.StaleIPS, bs.StalePower
	e.goodL1[id], e.goodL2[id] = bs.GoodL1, bs.GoodL2
	e.grace[id] = bs.Grace
	e.emaInnov[id], e.emaErr[id] = bs.EMAInnov, bs.EMAErr
	e.sickStreak[id] = bs.SickStreak
	e.lastReq[id] = bs.LastRequested
	e.haveReq[id] = bs.HaveRequested
	e.fallbackEpochs[id], e.healthyStreak[id] = bs.FallbackEpochs, bs.HealthyStreak
	e.health[id] = bs.Health
}

// syncTwin writes lane id's live state back into its scalar twin (and
// the twin's inner controller), making the scalar objects authoritative
// as of now. The actuation fields are the fast path's invariants.
func (e *SupEngine) syncTwin(id int) {
	e.twin[id].SetBatchState(supervisor.BatchState{
		Mode:           supervisor.ModeEngaged,
		IPSTarget:      e.supIPSTgt[id],
		PowerTarget:    e.supPowTgt[id],
		GoodIPS:        e.goodIPS[id],
		GoodPower:      e.goodPower[id],
		HaveGood:       e.haveGood[id],
		StaleIPS:       e.staleIPS[id],
		StalePower:     e.stalePower[id],
		GoodL1:         e.goodL1[id],
		GoodL2:         e.goodL2[id],
		Grace:          e.grace[id],
		EMAInnov:       e.emaInnov[id],
		EMAErr:         e.emaErr[id],
		SickStreak:     e.sickStreak[id],
		ApplyOK:        true,
		LastRequested:  e.lastReq[id],
		HaveRequested:  e.haveReq[id],
		FallbackEpochs: e.fallbackEpochs[id],
		HealthyStreak:  e.healthyStreak[id],
		Health:         e.health[id],
	})
	_ = e.mimo.ExtractTo(id, e.innerMC[id])
}

// evict parks the lane on its scalar twin. Call only with the SoA state
// un-mutated for the epoch being evicted: the twin replays it whole.
func (e *SupEngine) evict(id int) {
	e.syncTwin(id)
	e.parked[id] = true
}

// maybeReadmit returns an evicted lane to the fast path once its twin
// is back on the nominal engaged path (hysteretic re-engagement done,
// actuation healthy, no retry in flight).
func (e *SupEngine) maybeReadmit(id int) {
	tw := e.twin[id]
	if !tw.Nominal() || tw.FlightRecorder() != nil {
		return
	}
	if err := e.mimo.SetLaneState(id, e.innerMC[id].BatchState()); err != nil {
		return
	}
	e.loadSup(id, tw.BatchState())
	e.parked[id] = false
}

// Flush makes the scalar twin (and its inner controller) hold lane id's
// final state, so post-run reads — Health, Mode, further scalar
// stepping — see the batched run. Parked lanes are already current.
func (e *SupEngine) Flush(id int) {
	if !e.parked[id] {
		e.syncTwin(id)
	}
}

// SetTargets applies the scalar supervisor's SetTargets semantics to
// lane id: non-finite targets are dropped before they can reach the
// inner controller; accepted ones re-arm the alarm grace period. The
// inner lane applies its own TrySetTargets rules (negative targets are
// rejected there and counted, exactly as scalar).
func (e *SupEngine) SetTargets(id int, ips, power float64) {
	if e.parked[id] {
		e.twin[id].SetTargets(ips, power)
		return
	}
	if math.IsNaN(ips) || math.IsInf(ips, 0) || math.IsNaN(power) || math.IsInf(power, 0) {
		return
	}
	e.supIPSTgt[id], e.supPowTgt[id] = ips, power
	_ = e.mimo.trySetTargets(id, ips, power)
	e.grace[id] = e.opts[id].GraceEpochs
}

// Targets returns lane id's supervisor-level references.
func (e *SupEngine) Targets(id int) (ips, power float64) {
	if e.parked[id] {
		return e.twin[id].Targets()
	}
	return e.supIPSTgt[id], e.supPowTgt[id]
}

// Reset restores lane id to the post-Reset scalar state (mode engaged,
// counters zeroed, fresh grace period, inner controller reset) and
// re-admits it to the fast path.
func (e *SupEngine) Reset(id int) {
	if !e.parked[id] {
		e.syncTwin(id)
		e.parked[id] = true
	}
	e.twin[id].Reset()
	e.maybeReadmit(id)
}

// ObserveApply feeds one Apply outcome to lane id with the scalar
// ApplyObserver semantics. A success on the fast path is a no-op (the
// fast path's actuation state is the healthy fixed point); a failure
// leaves the nominal path, so the lane is evicted and the twin absorbs
// the failure — retry, backoff, and apply-triggered fallback then run
// scalar until re-admission.
func (e *SupEngine) ObserveApply(id int, cfg sim.Config, err error) {
	if e.parked[id] {
		e.twin[id].ObserveApply(cfg, err)
		return
	}
	if err == nil {
		return
	}
	e.evict(id)
	e.twin[id].ObserveApply(cfg, err)
}

// Health returns lane id's supervisor counters, folding in the inner
// controller's absorbed-error count exactly as the scalar Health does.
func (e *SupEngine) Health(id int) supervisor.Health {
	if e.parked[id] {
		return e.twin[id].Health()
	}
	h := e.health[id]
	h.InnerStepErrors = e.mimo.health[id].StepErrors
	return h
}

// Mode returns lane id's operating mode (fast-path lanes are engaged by
// construction).
func (e *SupEngine) Mode(id int) supervisor.Mode {
	if e.parked[id] {
		return e.twin[id].Mode()
	}
	return supervisor.ModeEngaged
}

// StepAll advances every live lane one supervised control epoch; see
// Engine.StepAll for the slice contract. Fast-path lanes run the fused
// kernel; parked lanes step their scalar twin. Fleet observability
// events are accumulated across the epoch and published through one
// bulk bus reservation. Allocation-free on the nominal path once the
// event scratch has grown to the fleet's observed-lane count.
func (e *SupEngine) StepAll(tels []sim.Telemetry, out []sim.Config) error {
	m := len(e.mimo.active)
	if len(tels) < m || len(out) < m {
		return fmt.Errorf("batch: need %d telemetry/output slots, have %d/%d", m, len(tels), len(out))
	}
	e.events = e.events[:0]
	base := 0
	for ; base+UnrollWidth <= m; base += UnrollWidth {
		for i := base; i < base+UnrollWidth; i++ {
			if e.mimo.active[i] {
				e.stepInto(i, tels, out, &e.events)
			}
		}
	}
	for i := base; i < m; i++ {
		if e.mimo.active[i] {
			e.stepInto(i, tels, out, &e.events)
		}
	}
	if len(e.events) > 0 {
		e.bus.PublishBatch(e.events)
	}
	return nil
}

// stepInto advances lane i, routing its event to the epoch batch evs.
func (e *SupEngine) stepInto(i int, tels []sim.Telemetry, out []sim.Config, evs *[]obs.Event) {
	if e.parked[i] {
		e.maybeReadmit(i)
		if e.parked[i] {
			out[i] = e.twin[i].Step(tels[i])
			return
		}
	}
	var ev obs.Event
	cfg, filled := e.supStep(i, &tels[i], &ev)
	out[i] = cfg
	if filled {
		if lb := e.loopBus[i]; lb == e.bus {
			*evs = append(*evs, ev)
		} else {
			// A lane wired to a different fleet's bus (unusual) keeps
			// the scalar per-event publish.
			lb.Publish(&ev)
		}
	}
}

// StepLane advances one lane, returning its chosen configuration.
func (e *SupEngine) StepLane(id int, t sim.Telemetry) sim.Config {
	if e.parked[id] {
		e.maybeReadmit(id)
		if e.parked[id] {
			return e.twin[id].Step(t)
		}
	}
	var ev obs.Event
	cfg, filled := e.supStep(id, &t, &ev)
	if filled {
		e.loopBus[id].Publish(&ev)
	}
	return cfg
}

// supStep is the fused nominal-path kernel: the line-for-line
// transcription of supervisor.Supervised.Step's engaged/healthy path
// (sanitize → dead-channel and model-health checks → inner LQG kernel →
// monitor feed → validation → obs sample) against the SoA state.
//
// The first half runs PURE — sanitize results, staleness, alarm EMAs,
// and the sick streak are computed in locals. If the epoch would enter
// fallback, nothing has been committed yet: the lane evicts and the
// scalar twin replays the epoch from the identical pre-epoch state, so
// the transition (counter increments, mode change, safe config) is
// byte-for-byte the scalar path's. Otherwise the locals commit and the
// inner kernel runs.
//
// It returns the chosen configuration and whether ev was filled with a
// fleet observability event to publish.
func (e *SupEngine) supStep(id int, t *sim.Telemetry, ev *obs.Event) (sim.Config, bool) {
	o := &e.opts[id]
	ipsTgt, powTgt := e.supIPSTgt[id], e.supPowTgt[id]

	// sanitize(), in locals.
	ipsOK := supPlausible(t.IPS, o.MinIPS, o.MaxIPS)
	powerOK := supPlausible(t.PowerW, o.MinPowerW, o.MaxPowerW)
	sanIPS, sanPow := t.IPS, t.PowerW
	goodI, goodP := e.goodIPS[id], e.goodPower[id]
	staleI, staleP := e.staleIPS[id], e.stalePower[id]
	if ipsOK {
		goodI = t.IPS
		staleI = 0
	} else {
		staleI++
		if e.haveGood[id] {
			sanIPS = e.goodIPS[id]
		} else {
			sanIPS = ipsTgt
		}
	}
	if powerOK {
		goodP = t.PowerW
		staleP = 0
	} else {
		staleP++
		if e.haveGood[id] {
			sanPow = e.goodPower[id]
		} else {
			sanPow = powTgt
		}
	}
	haveGood := e.haveGood[id] || (ipsOK && powerOK)
	sanL1, sanL2 := t.L1MPKI, t.L2MPKI
	goodL1, goodL2 := e.goodL1[id], e.goodL2[id]
	if supFinite(t.L1MPKI) && t.L1MPKI >= 0 {
		goodL1 = t.L1MPKI
	} else {
		sanL1 = e.goodL1[id]
	}
	if supFinite(t.L2MPKI) && t.L2MPKI >= 0 {
		goodL2 = t.L2MPKI
	} else {
		sanL2 = e.goodL2[id]
	}

	// Dead-channel and model-health checks, in locals.
	dead := staleI > o.MaxStaleEpochs || staleP > o.MaxStaleEpochs
	sick := dead
	grace := e.grace[id]
	emaInnov, emaErr := e.emaInnov[id], e.emaErr[id]
	innovAlarm, divAlarm, monAlarm := false, false, false
	if grace > 0 {
		grace--
	} else {
		// relInnovation on the previous epoch's innovation (the lane's
		// lastInnov slot — the scalar path reads it through
		// LastInnovation, which allocates a copy; the SoA read is the
		// same two floats). The MIMO innovation always has both
		// channels, so the scalar v >= 0 guard always passes.
		li := e.mimo.lastInnov[id*strideY : id*strideY+2 : id*strideY+2]
		iScale := math.Max(ipsTgt, 0.5)
		pScale := math.Max(powTgt, 0.5)
		v := math.Max(math.Abs(li[0])/iScale, math.Abs(li[1])/pScale)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 10 * o.InnovationLimit
		}
		emaInnov += o.InnovationAlpha * (v - emaInnov)
		if emaInnov > o.InnovationLimit {
			innovAlarm = true
			sick = true
		}
		// relError on the sanitized measurements.
		re := 0.0
		if ipsTgt > 0 {
			re = math.Abs(sanIPS-ipsTgt) / ipsTgt
		}
		if powTgt > 0 {
			if ep := math.Abs(sanPow-powTgt) / powTgt; ep > re {
				re = ep
			}
		}
		emaErr += o.DivergenceAlpha * (re - emaErr)
		if emaErr > o.DivergenceLimit {
			divAlarm = true
			sick = true
		}
		if e.mon[id].Level() == health.LevelFail {
			monAlarm = true
			sick = true
		}
	}
	sickStreak := e.sickStreak[id]
	if sick {
		sickStreak++
	} else {
		sickStreak = 0
	}
	if sickStreak >= o.FallbackAfter {
		// Fallback entry leaves the nominal fast path. Nothing has been
		// committed: evict and let the twin replay the epoch whole.
		e.evict(id)
		return e.twin[id].Step(*t), false
	}

	// Commit the supervisor state transition.
	h := &e.health[id]
	h.Epochs++
	if !ipsOK {
		h.SanitizedIPS++
	}
	if !powerOK {
		h.SanitizedPower++
	}
	if dead {
		h.DeadSensorEpochs++
	}
	if innovAlarm {
		h.InnovationAlarms++
	}
	if divAlarm {
		h.DivergenceAlarms++
	}
	if monAlarm {
		h.ModelHealthAlarms++
	}
	e.goodIPS[id], e.goodPower[id] = goodI, goodP
	e.staleIPS[id], e.stalePower[id] = staleI, staleP
	e.haveGood[id] = haveGood
	e.goodL1[id], e.goodL2[id] = goodL1, goodL2
	e.grace[id] = grace
	e.emaInnov[id], e.emaErr[id] = emaInnov, emaErr
	e.sickStreak[id] = sickStreak

	// Inner controller on the sanitized telemetry: the fused LQG +
	// quantize kernel.
	st := *t
	st.IPS, st.PowerW = sanIPS, sanPow
	st.L1MPKI, st.L2MPKI = sanL1, sanL2
	var cfg sim.Config
	if e.mimo.three[id] {
		cfg = e.mimo.step3(id, &st)
	} else {
		cfg = e.mimo.step2(id, &st)
	}

	// observeModelHealth() on the fresh innovation (nil-safe monitor).
	li := e.mimo.lastInnov[id*strideY : id*strideY+2 : id*strideY+2]
	e.mon[id].Observe(li[0], li[1])

	if err := cfg.Validate(); err != nil {
		h.IllegalConfigs++
		cfg = st.Config
	}
	e.lastReq[id] = cfg
	e.haveReq[id] = true

	// publishObs(): one wide fleet observability sample.
	l := e.loop[id]
	if l == nil {
		return cfg, false
	}
	guard := math.NaN()
	if mon := e.mon[id]; mon != nil {
		guard = mon.Snapshot().GuardbandConsumption
	}
	// lastInnovNorm() — relInnovation of the fresh innovation.
	iScale := math.Max(ipsTgt, 0.5)
	pScale := math.Max(powTgt, 0.5)
	innovNorm := math.Max(math.Abs(li[0])/iScale, math.Abs(li[1])/pScale)
	if math.IsNaN(innovNorm) || math.IsInf(innovNorm, 0) {
		innovNorm = 10 * o.InnovationLimit
	}
	var flags uint8
	if !(ipsOK && powerOK) {
		flags |= obs.FlagSanitized
	}
	filled := l.ObserveInto(obs.Sample{
		Mode:        uint8(supervisor.ModeEngaged),
		Health:      uint8(e.mon[id].Level()),
		Flags:       flags,
		IPSTarget:   ipsTgt,
		PowerTarget: powTgt,
		IPS:         sanIPS,
		PowerW:      sanPow,
		InnovNorm:   innovNorm,
		Guardband:   guard,
		ReqFreq:     int16(cfg.FreqIdx),
		ReqCache:    int16(cfg.CacheIdx),
		ReqROB:      int16(cfg.ROBIdx),
	}, ev)
	return cfg, filled
}

func supFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func supPlausible(v, lo, hi float64) bool { return supFinite(v) && v >= lo && v <= hi }
