package batch

import (
	"fmt"
	"sync"

	"mimoctl/internal/sim"
)

// shardRange splits n slots into `shards` contiguous ranges and returns
// the k-th one. Ranges cover [0, n) exactly and differ in size by at
// most one slot.
func shardRange(n, shards, k int) (lo, hi int) {
	return k * n / shards, (k + 1) * n / shards
}

// StepAllSharded is StepAll fanned out over `shards` workers, each
// stepping a contiguous range of lane slots, with an epoch barrier
// before returning. Lanes are independent, so the per-lane results and
// state are byte-identical to the sequential StepAll at any shard
// count (the differential suite pins this at 1/2/4). Intended for
// multi-core hosts driving very large fleets; on one core it is just
// StepAll plus scheduling overhead.
func (e *Engine) StepAllSharded(tels []sim.Telemetry, out []sim.Config, shards int) error {
	m := len(e.active)
	if len(tels) < m || len(out) < m {
		return fmt.Errorf("batch: need %d telemetry/output slots, have %d/%d", m, len(tels), len(out))
	}
	if shards > m {
		shards = m
	}
	if shards <= 1 {
		e.stepRange(0, m, tels, out)
		return nil
	}
	var wg sync.WaitGroup
	for k := 0; k < shards; k++ {
		lo, hi := shardRange(m, shards, k)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			e.stepRange(lo, hi, tels, out)
		}(lo, hi)
	}
	wg.Wait()
	return nil
}

// StepAllSharded fans the supervised fleet epoch out over `shards`
// workers on contiguous lane ranges with an epoch barrier. Per-lane
// results and state are byte-identical to the sequential StepAll at any
// shard count: lanes touch only their own SoA slots, evicted twins are
// per-lane objects, and each shard accumulates fleet events in its own
// scratch, published in shard order after the barrier so per-lane event
// streams stay ordered. (Cross-lane interleaving on the bus differs
// from the sequential driver; consumers already cannot rely on it — the
// bus is multi-producer.)
func (e *SupEngine) StepAllSharded(tels []sim.Telemetry, out []sim.Config, shards int) error {
	m := len(e.mimo.active)
	if len(tels) < m || len(out) < m {
		return fmt.Errorf("batch: need %d telemetry/output slots, have %d/%d", m, len(tels), len(out))
	}
	if shards > m {
		shards = m
	}
	if shards <= 1 {
		return e.StepAll(tels, out)
	}
	for len(e.shardEvents) < shards {
		e.shardEvents = append(e.shardEvents, nil)
	}
	var wg sync.WaitGroup
	for k := 0; k < shards; k++ {
		lo, hi := shardRange(m, shards, k)
		e.shardEvents[k] = e.shardEvents[k][:0]
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(k, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				if e.mimo.active[i] {
					e.stepInto(i, tels, out, &e.shardEvents[k])
				}
			}
		}(k, lo, hi)
	}
	wg.Wait()
	for k := 0; k < shards; k++ {
		if len(e.shardEvents[k]) > 0 {
			e.bus.PublishBatch(e.shardEvents[k])
		}
	}
	return nil
}
