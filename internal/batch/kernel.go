package batch

import (
	"math"

	"mimoctl/internal/core"
	"mimoctl/internal/sim"
)

// The step kernels below are line-for-line transcriptions of the scalar
// path — core.MIMOController.Step wrapping lqg.Controller.Step and
// ObserveApplied — with every mat call replaced by its fully unrolled
// fixed-shape expansion. Bit-identity rests on three disciplines:
//
//   - every multiply-accumulate is written as the same sequence of
//     `s += m * x` statements mat.MulVecInto executes, so no term is
//     reassociated or fused (Go does not auto-FMA on amd64, and the
//     textual order pins the rounding order everywhere else);
//   - negations that the scalar path computes as (-1)·v via
//     mat.VecScaleInto are written `-1 * v` here, and the anti-windup
//     saturation test keeps the scalar path's math.Sqrt comparison;
//   - quantization reuses the exact hysteresis-scan semantics (see
//     quant.go) including NaN/Inf hold-current sentinels.
//
// The differential harness (diff_test.go, FuzzBatchVsScalarStep)
// enforces all of this against the real scalar implementation.

// satThreshold is the largest float64 x with math.Sqrt(x) <= 1e-12,
// found once by bisection over the bit patterns. Hardware sqrt is
// correctly rounded and therefore monotone non-decreasing, so the
// scalar path's saturation test math.Sqrt(nrm) > 1e-12 is exactly
// equivalent to nrm > satThreshold for every input including NaN and
// +Inf (both comparisons are false for NaN); the kernels use the
// compare to keep the ~20-cycle sqrt off the fleet hot path.
// TestSatThresholdMatchesSqrt pins the equivalence around the boundary.
var satThreshold = func() float64 {
	lo, hi := math.Float64bits(0), math.Float64bits(1e-23)
	for lo+1 < hi {
		mid := lo + (hi-lo)/2
		if math.Sqrt(math.Float64frombits(mid)) <= 1e-12 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Float64frombits(lo)
}()

// step3 advances one 3-input lane (frequency, cache ways, ROB).
func (e *Engine) step3(id int, t *sim.Telemetry) sim.Config {
	if !e.haveCur[id] {
		e.cur[id] = t.Config
		e.haveCur[id] = true
	}
	cur := e.cur[id]

	A := e.a[id*strideA : id*strideA+16 : id*strideA+16]
	B := e.b[id*strideB : id*strideB+12 : id*strideB+12]
	C := e.c[id*strideC : id*strideC+8 : id*strideC+8]
	kx := e.kx[id*strideKx : id*strideKx+12 : id*strideKx+12]
	ku := e.ku[id*strideKu : id*strideKu+9 : id*strideKu+9]
	kz := e.kz[id*strideKz : id*strideKz+6 : id*strideKz+6]
	lc := e.lc[id*strideLc : id*strideLc+8 : id*strideLc+8]
	u0 := e.u0[id*strideU : id*strideU+3 : id*strideU+3]
	y0a := e.y0[id*strideY : id*strideY+2 : id*strideY+2]
	xhat := e.xhat[id*strideX : id*strideX+4 : id*strideX+4]
	xss := e.xss[id*strideX : id*strideX+4 : id*strideX+4]
	uPrev := e.uPrev[id*strideU : id*strideU+3 : id*strideU+3]
	uss := e.uss[id*strideU : id*strideU+3 : id*strideU+3]
	lastExcess := e.lastExcess[id*strideU : id*strideU+3 : id*strideU+3]
	zInt := e.zInt[id*strideY : id*strideY+2 : id*strideY+2]
	ref := e.ref[id*strideY : id*strideY+2 : id*strideY+2]
	lastInnov := e.lastInnov[id*strideY : id*strideY+2 : id*strideY+2]

	// Telemetry to deviation coordinates.
	y0 := t.IPS - y0a[0]
	y1 := t.PowerW - y0a[1]

	// Measurement update: innov = y - C·x̂, x̂ᶜ = x̂ + Lc·innov.
	var cy0, cy1 float64
	cy0 += C[0] * xhat[0]
	cy0 += C[1] * xhat[1]
	cy0 += C[2] * xhat[2]
	cy0 += C[3] * xhat[3]
	cy1 += C[4] * xhat[0]
	cy1 += C[5] * xhat[1]
	cy1 += C[6] * xhat[2]
	cy1 += C[7] * xhat[3]
	in0 := y0 - cy0
	in1 := y1 - cy1
	lastInnov[0], lastInnov[1] = in0, in1
	var l0, l1, l2, l3 float64
	l0 += lc[0] * in0
	l0 += lc[1] * in1
	l1 += lc[2] * in0
	l1 += lc[3] * in1
	l2 += lc[4] * in0
	l2 += lc[5] * in1
	l3 += lc[6] * in0
	l3 += lc[7] * in1
	xc0 := xhat[0] + l0
	xc1 := xhat[1] + l1
	xc2 := xhat[2] + l2
	xc3 := xhat[3] + l3

	// ΔU feedback: v = -Kx·(xᶜ-x_ss) - Ku·(u_prev-u_ss) - Kz·z.
	dx0 := xc0 - xss[0]
	dx1 := xc1 - xss[1]
	dx2 := xc2 - xss[2]
	dx3 := xc3 - xss[3]
	du0 := uPrev[0] - uss[0]
	du1 := uPrev[1] - uss[1]
	du2 := uPrev[2] - uss[2]
	var u0v, u1v, u2v float64
	{
		var kv float64
		kv += kx[0] * dx0
		kv += kx[1] * dx1
		kv += kx[2] * dx2
		kv += kx[3] * dx3
		v := -1 * kv
		var kv2 float64
		kv2 += ku[0] * du0
		kv2 += ku[1] * du1
		kv2 += ku[2] * du2
		v -= kv2
		var kv3 float64
		kv3 += kz[0] * zInt[0]
		kv3 += kz[1] * zInt[1]
		v -= kv3
		u0v = uPrev[0] + v
	}
	{
		var kv float64
		kv += kx[4] * dx0
		kv += kx[5] * dx1
		kv += kx[6] * dx2
		kv += kx[7] * dx3
		v := -1 * kv
		var kv2 float64
		kv2 += ku[3] * du0
		kv2 += ku[4] * du1
		kv2 += ku[5] * du2
		v -= kv2
		var kv3 float64
		kv3 += kz[2] * zInt[0]
		kv3 += kz[3] * zInt[1]
		v -= kv3
		u1v = uPrev[1] + v
	}
	{
		var kv float64
		kv += kx[8] * dx0
		kv += kx[9] * dx1
		kv += kx[10] * dx2
		kv += kx[11] * dx3
		v := -1 * kv
		var kv2 float64
		kv2 += ku[6] * du0
		kv2 += ku[7] * du1
		kv2 += ku[8] * du2
		v -= kv2
		var kv3 float64
		kv3 += kz[4] * zInt[0]
		kv3 += kz[5] * zInt[1]
		v -= kv3
		u2v = uPrev[2] + v
	}

	// Conditional-integration anti-windup (z += r - y unless the error
	// pushes into the unrealizable direction while saturated).
	var nrm float64
	nrm += lastExcess[0] * lastExcess[0]
	nrm += lastExcess[1] * lastExcess[1]
	nrm += lastExcess[2] * lastExcess[2]
	saturated := e.antiWindup[id] && nrm > satThreshold // ≡ math.Sqrt(nrm) > 1e-12
	{
		ez := ref[0] - y0
		skip := false
		if saturated && ez != 0 {
			push := 0.0
			push += -kz[0] * ez * lastExcess[0]
			push += -kz[2] * ez * lastExcess[1]
			push += -kz[4] * ez * lastExcess[2]
			skip = push > 0
		}
		if !skip {
			zInt[0] += ez
		}
	}
	{
		ez := ref[1] - y1
		skip := false
		if saturated && ez != 0 {
			push := 0.0
			push += -kz[1] * ez * lastExcess[0]
			push += -kz[3] * ez * lastExcess[1]
			push += -kz[5] * ez * lastExcess[2]
			skip = push > 0
		}
		if !skip {
			zInt[1] += ez
		}
	}

	// Time update: x̂ = A·xᶜ + B·u.
	var nx0, nx1, nx2, nx3 float64
	{
		var ax float64
		ax += A[0] * xc0
		ax += A[1] * xc1
		ax += A[2] * xc2
		ax += A[3] * xc3
		var bu float64
		bu += B[0] * u0v
		bu += B[1] * u1v
		bu += B[2] * u2v
		nx0 = ax + bu
	}
	{
		var ax float64
		ax += A[4] * xc0
		ax += A[5] * xc1
		ax += A[6] * xc2
		ax += A[7] * xc3
		var bu float64
		bu += B[3] * u0v
		bu += B[4] * u1v
		bu += B[5] * u2v
		nx1 = ax + bu
	}
	{
		var ax float64
		ax += A[8] * xc0
		ax += A[9] * xc1
		ax += A[10] * xc2
		ax += A[11] * xc3
		var bu float64
		bu += B[6] * u0v
		bu += B[7] * u1v
		bu += B[8] * u2v
		nx2 = ax + bu
	}
	{
		var ax float64
		ax += A[12] * xc0
		ax += A[13] * xc1
		ax += A[14] * xc2
		ax += A[15] * xc3
		var bu float64
		bu += B[9] * u0v
		bu += B[10] * u1v
		bu += B[11] * u2v
		nx3 = ax + bu
	}

	// Deviation -> absolute knob units, then quantize with hysteresis,
	// and look up the applied level for the ObserveApplied feedback.
	ua0 := u0v + u0[0]
	ua1 := u1v + u0[1]
	ua2 := (u2v + u0[2]) * core.ROBUnit
	q := &e.q
	var fi, ciAsc, ri int
	var uq0, uq1, uq2 float64
	if q.special {
		fi, ciAsc, ri = q.quant3(cur, ua0, ua1, ua2)
		uq0 = q.freqA[fi]
		uq1 = q.cacheA[ciAsc]
		uq2 = q.robA[ri] / core.ROBUnit
	} else {
		fi = q.quantFreq(cur.FreqIdx, ua0, core.ActuatorHysteresis)
		ciAsc = q.quantCacheAsc(len(q.cache)-1-cur.CacheIdx, ua1, core.ActuatorHysteresis)
		ri = q.quantROB(cur.ROBIdx, ua2, core.ActuatorHysteresis)
		uq0 = q.freq[fi]
		uq1 = q.cache[ciAsc]
		uq2 = q.rob[ri] / core.ROBUnit
	}
	ci := len(q.cache) - 1 - ciAsc

	// Actuator feedback (ObserveApplied): report the quantized input in
	// deviation coordinates and redo the B·u part of the time update.
	d0 := uq0 - u0[0] - u0v
	d1 := uq1 - u0[1] - u1v
	d2 := uq2 - u0[2] - u2v
	{
		var bd float64
		bd += B[0] * d0
		bd += B[1] * d1
		bd += B[2] * d2
		xhat[0] = nx0 + bd
		bd = 0
		bd += B[3] * d0
		bd += B[4] * d1
		bd += B[5] * d2
		xhat[1] = nx1 + bd
		bd = 0
		bd += B[6] * d0
		bd += B[7] * d1
		bd += B[8] * d2
		xhat[2] = nx2 + bd
		bd = 0
		bd += B[9] * d0
		bd += B[10] * d1
		bd += B[11] * d2
		xhat[3] = nx3 + bd
	}
	lastExcess[0] = -1 * d0
	lastExcess[1] = -1 * d1
	lastExcess[2] = -1 * d2
	uPrev[0] = uq0 - u0[0]
	uPrev[1] = uq1 - u0[1]
	uPrev[2] = uq2 - u0[2]

	cfg := sim.Config{FreqIdx: fi, CacheIdx: ci, ROBIdx: ri}
	e.cur[id] = cfg
	return cfg
}

// step2 advances one 2-input lane (frequency, cache ways; the ROB knob
// holds its current setting, exactly as configFromKnobs does for the
// 2-input variant).
func (e *Engine) step2(id int, t *sim.Telemetry) sim.Config {
	if !e.haveCur[id] {
		e.cur[id] = t.Config
		e.haveCur[id] = true
	}
	cur := e.cur[id]

	A := e.a[id*strideA : id*strideA+16 : id*strideA+16]
	B := e.b[id*strideB : id*strideB+8 : id*strideB+8] // 4x2 row-major
	C := e.c[id*strideC : id*strideC+8 : id*strideC+8]
	kx := e.kx[id*strideKx : id*strideKx+8 : id*strideKx+8] // 2x4
	ku := e.ku[id*strideKu : id*strideKu+4 : id*strideKu+4] // 2x2
	kz := e.kz[id*strideKz : id*strideKz+4 : id*strideKz+4] // 2x2
	lc := e.lc[id*strideLc : id*strideLc+8 : id*strideLc+8]
	u0 := e.u0[id*strideU : id*strideU+2 : id*strideU+2]
	y0a := e.y0[id*strideY : id*strideY+2 : id*strideY+2]
	xhat := e.xhat[id*strideX : id*strideX+4 : id*strideX+4]
	xss := e.xss[id*strideX : id*strideX+4 : id*strideX+4]
	uPrev := e.uPrev[id*strideU : id*strideU+2 : id*strideU+2]
	uss := e.uss[id*strideU : id*strideU+2 : id*strideU+2]
	lastExcess := e.lastExcess[id*strideU : id*strideU+2 : id*strideU+2]
	zInt := e.zInt[id*strideY : id*strideY+2 : id*strideY+2]
	ref := e.ref[id*strideY : id*strideY+2 : id*strideY+2]
	lastInnov := e.lastInnov[id*strideY : id*strideY+2 : id*strideY+2]

	y0 := t.IPS - y0a[0]
	y1 := t.PowerW - y0a[1]

	var cy0, cy1 float64
	cy0 += C[0] * xhat[0]
	cy0 += C[1] * xhat[1]
	cy0 += C[2] * xhat[2]
	cy0 += C[3] * xhat[3]
	cy1 += C[4] * xhat[0]
	cy1 += C[5] * xhat[1]
	cy1 += C[6] * xhat[2]
	cy1 += C[7] * xhat[3]
	in0 := y0 - cy0
	in1 := y1 - cy1
	lastInnov[0], lastInnov[1] = in0, in1
	var l0, l1, l2, l3 float64
	l0 += lc[0] * in0
	l0 += lc[1] * in1
	l1 += lc[2] * in0
	l1 += lc[3] * in1
	l2 += lc[4] * in0
	l2 += lc[5] * in1
	l3 += lc[6] * in0
	l3 += lc[7] * in1
	xc0 := xhat[0] + l0
	xc1 := xhat[1] + l1
	xc2 := xhat[2] + l2
	xc3 := xhat[3] + l3

	dx0 := xc0 - xss[0]
	dx1 := xc1 - xss[1]
	dx2 := xc2 - xss[2]
	dx3 := xc3 - xss[3]
	du0 := uPrev[0] - uss[0]
	du1 := uPrev[1] - uss[1]
	var u0v, u1v float64
	{
		var kv float64
		kv += kx[0] * dx0
		kv += kx[1] * dx1
		kv += kx[2] * dx2
		kv += kx[3] * dx3
		v := -1 * kv
		var kv2 float64
		kv2 += ku[0] * du0
		kv2 += ku[1] * du1
		v -= kv2
		var kv3 float64
		kv3 += kz[0] * zInt[0]
		kv3 += kz[1] * zInt[1]
		v -= kv3
		u0v = uPrev[0] + v
	}
	{
		var kv float64
		kv += kx[4] * dx0
		kv += kx[5] * dx1
		kv += kx[6] * dx2
		kv += kx[7] * dx3
		v := -1 * kv
		var kv2 float64
		kv2 += ku[2] * du0
		kv2 += ku[3] * du1
		v -= kv2
		var kv3 float64
		kv3 += kz[2] * zInt[0]
		kv3 += kz[3] * zInt[1]
		v -= kv3
		u1v = uPrev[1] + v
	}

	var nrm float64
	nrm += lastExcess[0] * lastExcess[0]
	nrm += lastExcess[1] * lastExcess[1]
	saturated := e.antiWindup[id] && nrm > satThreshold // ≡ math.Sqrt(nrm) > 1e-12
	{
		ez := ref[0] - y0
		skip := false
		if saturated && ez != 0 {
			push := 0.0
			push += -kz[0] * ez * lastExcess[0]
			push += -kz[2] * ez * lastExcess[1]
			skip = push > 0
		}
		if !skip {
			zInt[0] += ez
		}
	}
	{
		ez := ref[1] - y1
		skip := false
		if saturated && ez != 0 {
			push := 0.0
			push += -kz[1] * ez * lastExcess[0]
			push += -kz[3] * ez * lastExcess[1]
			skip = push > 0
		}
		if !skip {
			zInt[1] += ez
		}
	}

	var nx0, nx1, nx2, nx3 float64
	{
		var ax float64
		ax += A[0] * xc0
		ax += A[1] * xc1
		ax += A[2] * xc2
		ax += A[3] * xc3
		var bu float64
		bu += B[0] * u0v
		bu += B[1] * u1v
		nx0 = ax + bu
	}
	{
		var ax float64
		ax += A[4] * xc0
		ax += A[5] * xc1
		ax += A[6] * xc2
		ax += A[7] * xc3
		var bu float64
		bu += B[2] * u0v
		bu += B[3] * u1v
		nx1 = ax + bu
	}
	{
		var ax float64
		ax += A[8] * xc0
		ax += A[9] * xc1
		ax += A[10] * xc2
		ax += A[11] * xc3
		var bu float64
		bu += B[4] * u0v
		bu += B[5] * u1v
		nx2 = ax + bu
	}
	{
		var ax float64
		ax += A[12] * xc0
		ax += A[13] * xc1
		ax += A[14] * xc2
		ax += A[15] * xc3
		var bu float64
		bu += B[6] * u0v
		bu += B[7] * u1v
		nx3 = ax + bu
	}

	ua0 := u0v + u0[0]
	ua1 := u1v + u0[1]
	q := &e.q
	var fi, ciAsc int
	var uq0, uq1 float64
	if q.special {
		fi, ciAsc = q.quant2(cur, ua0, ua1)
		uq0 = q.freqA[fi]
		uq1 = q.cacheA[ciAsc]
	} else {
		fi = q.quantFreq(cur.FreqIdx, ua0, core.ActuatorHysteresis)
		ciAsc = q.quantCacheAsc(len(q.cache)-1-cur.CacheIdx, ua1, core.ActuatorHysteresis)
		uq0 = q.freq[fi]
		uq1 = q.cache[ciAsc]
	}
	ci := len(q.cache) - 1 - ciAsc
	// The scalar path quantizes the ROB request float64(cur.ROBEntries())
	// — the exact current level, which the hysteresis scan maps back to
	// cur.ROBIdx — and then overwrites cfg.ROBIdx with cur.ROBIdx anyway.
	ri := cur.ROBIdx

	d0 := uq0 - u0[0] - u0v
	d1 := uq1 - u0[1] - u1v
	{
		var bd float64
		bd += B[0] * d0
		bd += B[1] * d1
		xhat[0] = nx0 + bd
		bd = 0
		bd += B[2] * d0
		bd += B[3] * d1
		xhat[1] = nx1 + bd
		bd = 0
		bd += B[4] * d0
		bd += B[5] * d1
		xhat[2] = nx2 + bd
		bd = 0
		bd += B[6] * d0
		bd += B[7] * d1
		xhat[3] = nx3 + bd
	}
	lastExcess[0] = -1 * d0
	lastExcess[1] = -1 * d1
	uPrev[0] = uq0 - u0[0]
	uPrev[1] = uq1 - u0[1]

	cfg := sim.Config{FreqIdx: fi, CacheIdx: ci, ROBIdx: ri}
	e.cur[id] = cfg
	return cfg
}
