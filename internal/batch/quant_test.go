package batch

import (
	"math"
	"math/rand"
	"testing"

	"mimoctl/internal/core"
	"mimoctl/internal/sim"
)

// randReq draws quantizer requests from a mixture that stresses every
// branch: in-range uniforms, exact levels, exact midpoints (and their
// neighborhoods), far out-of-range magnitudes, and non-finite sentinels.
func randReq(rng *rand.Rand, levels []float64) float64 {
	lo, hi := levels[0], levels[len(levels)-1]
	span := hi - lo
	switch rng.Intn(10) {
	case 0: // exact level
		return levels[rng.Intn(len(levels))]
	case 1: // exact midpoint between adjacent levels (ties)
		i := rng.Intn(len(levels) - 1)
		return (levels[i] + levels[i+1]) / 2
	case 2: // midpoint neighborhood
		i := rng.Intn(len(levels) - 1)
		return (levels[i]+levels[i+1])/2 + (rng.Float64()-0.5)*1e-12
	case 3: // far out of range
		return (rng.Float64()*2 - 1) * 1e6
	case 4: // special values
		switch rng.Intn(6) {
		case 0:
			return math.NaN()
		case 1:
			return math.Inf(1)
		case 2:
			return math.Inf(-1)
		case 3:
			return math.Copysign(0, -1)
		case 4:
			return 1e300
		default:
			return -1e300
		}
	default: // in and slightly out of range
		return lo - 0.5*span + rng.Float64()*2*span
	}
}

// TestQuantMatchesSim proves the batch quantizers reproduce
// sim.NearestConfigHysteresis exactly — same indices for every request,
// including non-finite and exact-tie inputs — across randomized current
// configurations.
func TestQuantMatchesSim(t *testing.T) {
	q := newQuantTables()
	if !q.freqFast {
		t.Fatal("frequency grid did not verify uniform; fast path untested")
	}
	if !q.robFast {
		t.Fatal("ROB grid did not verify uniform; fast path untested")
	}
	rng := rand.New(rand.NewSource(1))
	const iters = 400000
	for i := 0; i < iters; i++ {
		cur := sim.Config{
			FreqIdx:  rng.Intn(len(q.freq)),
			CacheIdx: rng.Intn(len(q.cache)),
			ROBIdx:   rng.Intn(len(q.rob)),
		}
		fReq := randReq(rng, q.freq)
		cReq := randReq(rng, q.cache)
		rReq := randReq(rng, q.rob)

		want := sim.NearestConfigHysteresis(fReq, cReq, rReq, cur, core.ActuatorHysteresis)

		fi := q.quantFreq(cur.FreqIdx, fReq, core.ActuatorHysteresis)
		ciAsc := q.quantCacheAsc(len(q.cache)-1-cur.CacheIdx, cReq, core.ActuatorHysteresis)
		got := sim.Config{
			FreqIdx:  fi,
			CacheIdx: len(q.cache) - 1 - ciAsc,
			ROBIdx:   q.quantROB(cur.ROBIdx, rReq, core.ActuatorHysteresis),
		}
		if got != want {
			t.Fatalf("iter %d: cur=%+v req=(%v,%v,%v): batch %+v, sim %+v",
				i, cur, fReq, cReq, rReq, got, want)
		}
	}
}

// TestQuantUniformMatchesScan drives the fast uniform-grid path against
// the verbatim scan on the real grids with adversarial current indices
// (including out-of-range ones, which both sides clamp to 0).
func TestQuantUniformMatchesScan(t *testing.T) {
	q := newQuantTables()
	grids := []struct {
		name          string
		levels        []float64
		base, invStep float64
	}{
		{"freq", q.freq, q.freqBase, q.freqInvStep},
		{"rob", q.rob, q.robBase, q.robInvStep},
	}
	rng := rand.New(rand.NewSource(2))
	for _, g := range grids {
		for i := 0; i < 300000; i++ {
			cur := rng.Intn(len(g.levels)+4) - 2 // includes out-of-range
			req := randReq(rng, g.levels)
			want := scanIndex(g.levels, cur, req, core.ActuatorHysteresis)
			got := quantUniform(g.levels, g.base, g.invStep, len(g.levels), cur, req, core.ActuatorHysteresis)
			if got != want {
				t.Fatalf("%s iter %d: cur=%d req=%v: fast %d, scan %d", g.name, i, cur, req, got, want)
			}
		}
	}
}

// TestQuantCache4MatchesScan drives the unrolled four-level cache
// quantizer against the verbatim scan with adversarial current indices.
func TestQuantCache4MatchesScan(t *testing.T) {
	q := newQuantTables()
	if !q.special {
		t.Fatal("tables did not specialize; unrolled cache path untested")
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300000; i++ {
		cur := rng.Intn(nCache+4) - 2 // includes out-of-range
		req := randReq(rng, q.cache)
		want := scanIndex(q.cache, cur, req, core.ActuatorHysteresis)
		got := quantCache4(&q.cacheA, cur, req, core.ActuatorHysteresis)
		if got != want {
			t.Fatalf("iter %d: cur=%d req=%v: unrolled %d, scan %d", i, cur, req, got, want)
		}
	}
}

// TestUniformGridDetection pins which grids take the fast path and that
// a non-uniform grid is rejected.
func TestUniformGridDetection(t *testing.T) {
	if _, _, ok := uniformGrid([]float64{2, 4, 8, 16}); ok {
		t.Fatal("geometric grid accepted as uniform")
	}
	if _, _, ok := uniformGrid([]float64{1}); ok {
		t.Fatal("single-level grid accepted")
	}
	if _, _, ok := uniformGrid(sim.FreqLevels()); !ok {
		t.Fatal("frequency grid rejected; fast path dead")
	}
	if _, _, ok := uniformGrid(sim.ROBLevels()); !ok {
		t.Fatal("ROB grid rejected; fast path dead")
	}
}

// FuzzQuantHysteresis fuzzes raw request bits and current indices
// against sim.NearestConfigHysteresis.
func FuzzQuantHysteresis(f *testing.F) {
	f.Add(uint64(0x4004000000000000), uint64(0x4010000000000000), uint64(0x4050000000000000), 3, 1, 4)
	f.Add(^uint64(0), uint64(0x7FF0000000000000), uint64(0xFFF0000000000000), 0, 0, 0) // NaN, +Inf, -Inf
	f.Add(uint64(0x8000000000000000), uint64(0), uint64(0x3FF0000000000000), 15, 3, 7) // -0, 0, 1
	q := newQuantTables()
	f.Fuzz(func(t *testing.T, fb, cb, rb uint64, fc, cc, rc int) {
		cur := sim.Config{
			FreqIdx:  clampIdx(fc, len(q.freq)),
			CacheIdx: clampIdx(cc, len(q.cache)),
			ROBIdx:   clampIdx(rc, len(q.rob)),
		}
		fReq := math.Float64frombits(fb)
		cReq := math.Float64frombits(cb)
		rReq := math.Float64frombits(rb)
		want := sim.NearestConfigHysteresis(fReq, cReq, rReq, cur, core.ActuatorHysteresis)
		fi := q.quantFreq(cur.FreqIdx, fReq, core.ActuatorHysteresis)
		ciAsc := q.quantCacheAsc(len(q.cache)-1-cur.CacheIdx, cReq, core.ActuatorHysteresis)
		got := sim.Config{
			FreqIdx:  fi,
			CacheIdx: len(q.cache) - 1 - ciAsc,
			ROBIdx:   q.quantROB(cur.ROBIdx, rReq, core.ActuatorHysteresis),
		}
		if got != want {
			t.Fatalf("cur=%+v req=(%v,%v,%v): batch %+v, sim %+v", cur, fReq, cReq, rReq, got, want)
		}
	})
}

// TestQuantFusedMatchesOutlined drives the fused per-lane quantizers
// (quant3/quant2) against the outlined single-grid functions across
// adversarial requests and current indices, including out-of-range and
// non-finite ones.
func TestQuantFusedMatchesOutlined(t *testing.T) {
	q := newQuantTables()
	if !q.special {
		t.Fatal("tables did not specialize; fused path untested")
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 300000; i++ {
		cur := sim.Config{
			FreqIdx:  rng.Intn(len(q.freq)+4) - 2,
			CacheIdx: rng.Intn(len(q.cache)+4) - 2,
			ROBIdx:   rng.Intn(len(q.rob)+4) - 2,
		}
		fReq := randReq(rng, q.freq)
		cReq := randReq(rng, q.cache)
		rReq := randReq(rng, q.rob)

		wantF := quantUniform(q.freq, q.freqBase, q.freqInvStep, len(q.freq), cur.FreqIdx, fReq, core.ActuatorHysteresis)
		wantC := quantCache4(&q.cacheA, len(q.cache)-1-cur.CacheIdx, cReq, core.ActuatorHysteresis)
		wantR := quantUniform(q.rob, q.robBase, q.robInvStep, len(q.rob), cur.ROBIdx, rReq, core.ActuatorHysteresis)

		fi, ciAsc, ri := q.quant3(cur, fReq, cReq, rReq)
		if fi != wantF || ciAsc != wantC || ri != wantR {
			t.Fatalf("quant3 iter %d: cur=%+v req=(%v,%v,%v): got (%d,%d,%d), want (%d,%d,%d)",
				i, cur, fReq, cReq, rReq, fi, ciAsc, ri, wantF, wantC, wantR)
		}
		fi2, ci2 := q.quant2(cur, fReq, cReq)
		if fi2 != wantF || ci2 != wantC {
			t.Fatalf("quant2 iter %d: cur=%+v req=(%v,%v): got (%d,%d), want (%d,%d)",
				i, cur, fReq, cReq, fi2, ci2, wantF, wantC)
		}
	}
}

// TestSatThresholdMatchesSqrt pins the kernels' saturation compare
// nrm > satThreshold to the scalar path's math.Sqrt(nrm) > 1e-12 —
// exhaustively for a few thousand ulps around the boundary, plus random
// magnitudes and the non-finite sentinels.
func TestSatThresholdMatchesSqrt(t *testing.T) {
	check := func(nrm float64) {
		t.Helper()
		want := math.Sqrt(nrm) > 1e-12
		got := nrm > satThreshold
		if got != want {
			t.Fatalf("nrm=%v (bits %#x): threshold %v, sqrt %v", nrm, math.Float64bits(nrm), got, want)
		}
	}
	b := math.Float64bits(satThreshold)
	for d := uint64(0); d <= 4096; d++ {
		check(math.Float64frombits(b - d))
		check(math.Float64frombits(b + d))
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200000; i++ {
		check(math.Float64frombits(rng.Uint64() &^ (1 << 63))) // nrm is a sum of squares: non-negative
	}
	check(0)
	check(math.Inf(1))
	check(math.NaN())
}

func clampIdx(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}
