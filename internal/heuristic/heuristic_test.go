package heuristic

import (
	"math"
	"testing"

	"mimoctl/internal/core"
	"mimoctl/internal/sim"
	"mimoctl/internal/workloads"
)

func tel(ips, power, l2 float64, cfg sim.Config) sim.Telemetry {
	return sim.Telemetry{IPS: ips, PowerW: power, L2MPKI: l2, Config: cfg}
}

// drive feeds n identical telemetry samples and returns the last config.
func drive(h core.ArchController, t sim.Telemetry, n int) sim.Config {
	var cfg sim.Config
	for i := 0; i < n; i++ {
		cfg = h.Step(t)
	}
	return cfg
}

func TestTrackerPowerOverBudgetLowersFrequency(t *testing.T) {
	h := NewTracker(Options{})
	h.SetTargets(2.5, 2.0)
	start := sim.MidrangeConfig()
	cfg := drive(h, tel(2.5, 2.6, 1, start), 20) // 30% power overshoot
	if cfg.FreqIdx >= start.FreqIdx {
		t.Fatalf("frequency not reduced: %v -> %v", start, cfg)
	}
}

func TestTrackerSlowComputeBoundRaisesFrequency(t *testing.T) {
	h := NewTracker(Options{})
	h.SetTargets(2.5, 2.0)
	start := sim.MidrangeConfig()
	cfg := drive(h, tel(1.5, 1.2, 1, start), 20) // slow, power headroom, low L2 misses
	if cfg.FreqIdx <= start.FreqIdx {
		t.Fatalf("frequency not raised: %v -> %v", start, cfg)
	}
}

func TestTrackerSlowMemoryBoundGrowsCache(t *testing.T) {
	h := NewTracker(Options{})
	h.SetTargets(2.5, 2.0)
	start := sim.MidrangeConfig()
	cfg := drive(h, tel(1.5, 1.2, 20, start), 20) // slow, headroom, memory bound
	if cfg.L2Ways() <= start.L2Ways() {
		t.Fatalf("cache not grown: %v -> %v", start, cfg)
	}
}

func TestTrackerDeadbandHolds(t *testing.T) {
	h := NewTracker(Options{})
	h.SetTargets(2.5, 2.0)
	start := sim.MidrangeConfig()
	cfg := drive(h, tel(2.5, 2.0, 1, start), 50) // exactly on target
	if cfg != start {
		t.Fatalf("moved inside deadband: %v -> %v", start, cfg)
	}
}

func TestTrackerRateLimit(t *testing.T) {
	h := NewTracker(Options{DecisionEveryEpochs: 10})
	h.SetTargets(2.5, 2.0)
	start := sim.MidrangeConfig()
	sample := tel(2.5, 3.0, 1, start)
	var moves int
	prev := start
	for i := 0; i < 40; i++ {
		cfg := h.Step(sample)
		if cfg != prev {
			moves++
			prev = cfg
		}
	}
	if moves > 4 {
		t.Fatalf("%d moves in 40 epochs with a 10-epoch decision interval", moves)
	}
}

func TestTrackerOnRealPlantReducesError(t *testing.T) {
	h := NewTracker(Options{})
	h.SetTargets(2.5, 2.0)
	w, err := workloads.ByName("namd")
	if err != nil {
		t.Fatal(err)
	}
	proc, err := sim.NewProcessor(w, sim.DefaultProcessorOptions(), 44)
	if err != nil {
		t.Fatal(err)
	}
	telem := proc.Step()
	var sumP float64
	n := 0
	for k := 0; k < 2500; k++ {
		cfg := h.Step(telem)
		if err := proc.Apply(cfg); err != nil {
			t.Fatal(err)
		}
		telem = proc.Step()
		if k > 2000 {
			sumP += telem.TruePowerW
			n++
		}
	}
	if e := math.Abs(sumP/float64(n)-2.0) / 2.0; e > 0.20 {
		t.Fatalf("heuristic power error %.1f%%", e*100)
	}
}

func TestTrackerInterface(t *testing.T) {
	h := NewTracker(Options{})
	var _ core.ArchController = h
	if h.Name() != "Heuristic" {
		t.Fatal("name")
	}
	h.SetTargets(1, 1)
	if i, p := h.Targets(); i != 1 || p != 1 {
		t.Fatal("targets")
	}
	h.Reset() // must not panic; state cleared
}

// searchPlant is a fake plant for the coordinate search: the metric
// IPS²/P peaks at high frequency and mid cache.
type searchPlant struct{}

func (searchPlant) telemetry(cfg sim.Config, phase int) sim.Telemetry {
	f := cfg.FreqGHz()
	ways := float64(cfg.L2Ways())
	ips := f * (1 + 0.05*ways - 0.005*ways*ways)
	power := 0.3 + 0.5*f*f
	return sim.Telemetry{IPS: ips, PowerW: power, L2MPKI: 1, PhaseID: phase, Config: cfg}
}

func TestSearcherImprovesMetric(t *testing.T) {
	s, err := NewSearcher(SearcherConfig{K: 2, SettleEpochs: 1, MeasureEpochs: 1, PeriodEpochs: 100000})
	if err != nil {
		t.Fatal(err)
	}
	p := searchPlant{}
	cfg := sim.MidrangeConfig()
	for i := 0; i < 300; i++ {
		cfg = s.Step(p.telemetry(cfg, 0))
	}
	mid := p.telemetry(sim.MidrangeConfig(), 0)
	final := p.telemetry(cfg, 0)
	m0 := mid.IPS * mid.IPS / mid.PowerW
	m1 := final.IPS * final.IPS / final.PowerW
	if m1 <= m0 {
		t.Fatalf("search did not improve the metric: %v -> %v (cfg %v)", m0, m1, cfg)
	}
	if s.state != searchHold {
		t.Fatalf("search did not settle: state %v", s.state)
	}
}

func TestSearcherRestartsOnPhaseChange(t *testing.T) {
	s, err := NewSearcher(SearcherConfig{K: 2, SettleEpochs: 1, MeasureEpochs: 1, PeriodEpochs: 100000})
	if err != nil {
		t.Fatal(err)
	}
	p := searchPlant{}
	cfg := sim.MidrangeConfig()
	for i := 0; i < 300; i++ {
		cfg = s.Step(p.telemetry(cfg, 0))
	}
	if s.state != searchHold {
		t.Fatal("not settled")
	}
	s.Step(p.telemetry(cfg, 1))
	if s.state != searchInit {
		t.Fatal("phase change did not restart search")
	}
}

func TestSearcherPeriodicRestart(t *testing.T) {
	s, err := NewSearcher(SearcherConfig{K: 2, SettleEpochs: 1, MeasureEpochs: 1, PeriodEpochs: 120})
	if err != nil {
		t.Fatal(err)
	}
	p := searchPlant{}
	cfg := sim.MidrangeConfig()
	settled := false
	restarted := false
	for i := 0; i < 400; i++ {
		cfg = s.Step(p.telemetry(cfg, 0))
		if s.state == searchHold {
			settled = true
		}
		if settled && s.state == searchInit {
			restarted = true
			break
		}
	}
	if !settled || !restarted {
		t.Fatalf("settled=%v restarted=%v", settled, restarted)
	}
}

func TestSearcherRanksMemoryBoundCacheFirst(t *testing.T) {
	s, err := NewSearcher(SearcherConfig{K: 2, SettleEpochs: 1, MeasureEpochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.MidrangeConfig()
	// Feed memory-bound telemetry through the init phase.
	for i := 0; i < 3 && s.state == searchInit; i++ {
		s.Step(sim.Telemetry{IPS: 1, PowerW: 1, L2MPKI: 30, Config: cfg})
	}
	if len(s.rank) == 0 || s.rank[0] != knobCache {
		t.Fatalf("memory-bound rank %v, want cache first", s.rank)
	}
	// And compute-bound puts frequency first.
	s2, _ := NewSearcher(SearcherConfig{K: 2, SettleEpochs: 1, MeasureEpochs: 1})
	for i := 0; i < 3 && s2.state == searchInit; i++ {
		s2.Step(sim.Telemetry{IPS: 1, PowerW: 1, L2MPKI: 0.5, Config: cfg})
	}
	if len(s2.rank) == 0 || s2.rank[0] != knobFreq {
		t.Fatalf("compute-bound rank %v, want frequency first", s2.rank)
	}
}

func TestSearcherValidation(t *testing.T) {
	if _, err := NewSearcher(SearcherConfig{K: 0}); err == nil {
		t.Fatal("expected K validation error")
	}
	s, err := NewSearcher(SearcherConfig{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	var _ core.ArchController = s
	if s.Name() != "Heuristic" {
		t.Fatal("name")
	}
	s.SetTargets(1, 2)
	if i, p := s.Targets(); i != 1 || p != 2 {
		t.Fatal("targets")
	}
}

func TestSearcherThreeInputMovesROB(t *testing.T) {
	s, err := NewSearcher(SearcherConfig{K: 2, Options: Options{ThreeInput: true}, SettleEpochs: 1, MeasureEpochs: 1, PeriodEpochs: 100000})
	if err != nil {
		t.Fatal(err)
	}
	// A plant where only a bigger ROB helps the metric.
	mk := func(cfg sim.Config, phase int) sim.Telemetry {
		ips := 1 + float64(cfg.ROBEntries())/64
		return sim.Telemetry{IPS: ips, PowerW: 1, L2MPKI: 30, PhaseID: phase, Config: cfg}
	}
	cfg := sim.MidrangeConfig()
	for i := 0; i < 300; i++ {
		cfg = s.Step(mk(cfg, 0))
	}
	if cfg.ROBIdx <= sim.MidrangeConfig().ROBIdx {
		t.Fatalf("3-input search never grew the ROB: %v", cfg)
	}
}
