// Package heuristic implements the paper's "Heuristic" comparison
// architecture (Table IV): a sophisticated rule-based controller in the
// style of Zhang & Hoffmann (ASPLOS 2016), tuned on the training set.
//
// The algorithm has the paper's two steps (§VII-C):
//
//  1. it ranks the adaptive features (cache size, frequency, ROB size)
//     by their expected impact on the current application, using the
//     measured memory-boundedness (L2 misses per kilo-instruction, as in
//     Isci et al.), and
//  2. in tracking experiments it applies threshold rules on the output
//     errors, actuating the ranked features in order; in optimization
//     experiments it performs an iterative coordinate search, testing a
//     few configurations of each feature in rank order.
//
// Its characteristic weaknesses — static thresholds tuned offline and
// one-knob-at-a-time moves — are exactly what the paper contrasts with
// MIMO control. Note that, unlike the MIMO controller, the tracking
// rules and the search rules are separate algorithms, and the 3-input
// variant required re-deriving the rule set (§VII-C: "the algorithms
// ... have to be completely redesigned from scratch").
package heuristic

import (
	"errors"
	"math"

	"mimoctl/internal/core"
	"mimoctl/internal/sim"
)

// Options holds the tuned rule parameters. Zero values select the
// constants obtained by offline tuning on the paper's training set
// (sjeng, gobmk, leslie3d, namd).
type Options struct {
	// ThreeInput enables the ROB knob; the rule set changes with it.
	ThreeInput bool
	// PowerDeadband / IPSDeadband are the relative error thresholds
	// below which no action is taken.
	PowerDeadband, IPSDeadband float64
	// MemBoundL2MPKI is the L2 miss rate above which the application is
	// classified memory-bound, changing the feature ranking.
	MemBoundL2MPKI float64
	// DecisionEveryEpochs rate-limits actuation.
	DecisionEveryEpochs int
	// EMAAlpha smooths the noisy sensors before rule evaluation.
	EMAAlpha float64
}

func (o Options) withDefaults() Options {
	if o.PowerDeadband == 0 {
		o.PowerDeadband = 0.04
	}
	if o.IPSDeadband == 0 {
		o.IPSDeadband = 0.05
	}
	if o.MemBoundL2MPKI == 0 {
		o.MemBoundL2MPKI = 5.0
	}
	if o.DecisionEveryEpochs == 0 {
		o.DecisionEveryEpochs = 4
	}
	if o.EMAAlpha == 0 {
		o.EMAAlpha = 0.25
	}
	return o
}

// Tracker is the tracking-mode heuristic controller.
type Tracker struct {
	opts Options

	ipsTarget, powerTarget float64

	emaIPS, emaP, emaL2 float64
	haveEMA             bool
	sinceDecision       int
	cur                 sim.Config
	haveCur             bool
}

// NewTracker builds the tracking controller.
func NewTracker(opts Options) *Tracker {
	t := &Tracker{opts: opts.withDefaults()}
	t.SetTargets(core.DefaultIPSTarget, core.DefaultPowerTarget)
	return t
}

// Name implements core.ArchController.
func (h *Tracker) Name() string { return "Heuristic" }

// SetTargets implements core.ArchController.
func (h *Tracker) SetTargets(ips, power float64) { h.ipsTarget, h.powerTarget = ips, power }

// Targets implements core.ArchController.
func (h *Tracker) Targets() (float64, float64) { return h.ipsTarget, h.powerTarget }

// Reset implements core.ArchController.
func (h *Tracker) Reset() {
	h.haveEMA = false
	h.haveCur = false
	h.sinceDecision = 0
}

// Step implements core.ArchController: threshold rules over smoothed
// errors, one ranked-feature step per decision interval.
func (h *Tracker) Step(t sim.Telemetry) sim.Config {
	if !h.haveCur {
		h.cur = t.Config
		h.haveCur = true
	}
	h.observe(t)
	h.sinceDecision++
	if !h.haveEMA || h.sinceDecision < h.opts.DecisionEveryEpochs {
		return h.cur
	}
	h.sinceDecision = 0

	eP := (h.emaP - h.powerTarget) / h.powerTarget
	eI := (h.emaIPS - h.ipsTarget) / h.ipsTarget
	memBound := h.emaL2 > h.opts.MemBoundL2MPKI

	switch {
	case eP > h.opts.PowerDeadband:
		// Over the power budget: power has priority. Frequency has the
		// largest power impact; if it is already at the floor, shed the
		// next-ranked feature.
		if !h.dec(&h.cur.FreqIdx, len(sim.FreqSettingsGHz)) {
			if !h.decCache() && h.opts.ThreeInput {
				h.dec(&h.cur.ROBIdx, len(sim.ROBSettings))
			}
		}
	case eI < -h.opts.IPSDeadband && eP < -h.opts.PowerDeadband/2:
		// Too slow with power headroom: grow the feature ranked highest
		// for IPS on this application class.
		h.boostIPS(memBound)
	case eI < -h.opts.IPSDeadband:
		// Too slow at the power limit: trade features — shrink a
		// low-IPS-impact power consumer, grow a high-IPS one.
		if memBound {
			if !h.incCache() {
				h.dec(&h.cur.FreqIdx, len(sim.FreqSettingsGHz))
			}
		} else {
			if !h.decCache() {
				h.inc(&h.cur.FreqIdx, len(sim.FreqSettingsGHz))
			}
		}
	case eI > h.opts.IPSDeadband && eP < -h.opts.PowerDeadband:
		// Faster than required with power headroom: nothing to fix.
	case eI > h.opts.IPSDeadband:
		// Faster than required: save power with the cheapest lever.
		h.dec(&h.cur.FreqIdx, len(sim.FreqSettingsGHz))
	}
	return h.cur
}

// usable reports whether a sensor reading can enter the rule state: a
// NaN or Inf sample would poison the EMAs permanently (NaN never decays
// out of an exponential average), so corrupt samples are skipped and the
// last good smoothed value stands in — the same last-good substitution
// the supervised runtime applies (internal/supervisor).
func usable(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func (h *Tracker) observe(t sim.Telemetry) {
	if !h.haveEMA {
		if !usable(t.IPS) || !usable(t.PowerW) || !usable(t.L2MPKI) {
			return
		}
		h.emaIPS, h.emaP, h.emaL2 = t.IPS, t.PowerW, t.L2MPKI
		h.haveEMA = true
		return
	}
	a := h.opts.EMAAlpha
	if usable(t.IPS) {
		h.emaIPS += a * (t.IPS - h.emaIPS)
	}
	if usable(t.PowerW) {
		h.emaP += a * (t.PowerW - h.emaP)
	}
	if usable(t.L2MPKI) {
		h.emaL2 += a * (t.L2MPKI - h.emaL2)
	}
}

// boostIPS grows the most impactful feature for this application class.
func (h *Tracker) boostIPS(memBound bool) {
	if memBound {
		// Cache first, then ROB (more MLP), then frequency.
		if h.incCache() {
			return
		}
		if h.opts.ThreeInput && h.inc(&h.cur.ROBIdx, len(sim.ROBSettings)) {
			return
		}
		h.inc(&h.cur.FreqIdx, len(sim.FreqSettingsGHz))
		return
	}
	// Compute-bound: frequency first, then ROB, then cache.
	if h.inc(&h.cur.FreqIdx, len(sim.FreqSettingsGHz)) {
		return
	}
	if h.opts.ThreeInput && h.inc(&h.cur.ROBIdx, len(sim.ROBSettings)) {
		return
	}
	h.incCache()
}

// inc/dec move an index one step within [0, n), reporting success.
func (h *Tracker) inc(idx *int, n int) bool {
	if *idx+1 >= n {
		return false
	}
	*idx++
	return true
}

func (h *Tracker) dec(idx *int, n int) bool {
	if *idx <= 0 {
		return false
	}
	*idx--
	return true
}

// Cache indices are ordered largest-first, so growing the cache means
// decreasing the index.
func (h *Tracker) incCache() bool { return h.dec(&h.cur.CacheIdx, len(sim.CacheSettings)) }
func (h *Tracker) decCache() bool { return h.inc(&h.cur.CacheIdx, len(sim.CacheSettings)) }

// Searcher is the optimization-mode heuristic (minimize E·D^(k-1)): an
// iterative coordinate search testing a few configurations of each
// feature in impact-rank order, limited to MaxTries trials per episode.
// A full search (from the midrange configuration) runs at startup and on
// phase changes; the periodic invocations re-measure the current point
// and probe the top-ranked feature only.
type Searcher struct {
	k    int
	opts Options

	maxTries    int
	refineTries int
	backoff     int
	settle      int
	measure     int
	period      int

	// Search state.
	state       searchState
	stateEpochs int
	tries       int
	triesBudget int
	forceMid    bool
	rank        []knob
	rankPos     int
	dir         int // +1 growing, -1 shrinking the current knob
	cur         sim.Config
	bestCfg     sim.Config
	bestMetric  float64
	sumIPS      float64
	sumP        float64
	sumL2       float64
	sumN        int
	sincePeriod int
	lastPhase   int
	havePhase   bool

	ipsTarget, powerTarget float64
}

type searchState int

const (
	searchInit searchState = iota
	searchTrial
	searchHold
)

type knob int

const (
	knobFreq knob = iota
	knobCache
	knobROB
)

// SearcherConfig parameterizes the optimization heuristic.
type SearcherConfig struct {
	// K selects the metric IPS^K/P.
	K int
	Options
	MaxTries      int
	SettleEpochs  int
	MeasureEpochs int
	PeriodEpochs  int
}

// NewSearcher builds the optimization-mode controller.
func NewSearcher(cfg SearcherConfig) (*Searcher, error) {
	if cfg.K < 1 {
		return nil, errors.New("heuristic: K must be >= 1")
	}
	if cfg.MaxTries == 0 {
		cfg.MaxTries = core.DefaultOptimizerMaxTries
	}
	if cfg.SettleEpochs == 0 {
		cfg.SettleEpochs = 8
	}
	if cfg.MeasureEpochs == 0 {
		cfg.MeasureEpochs = 20
	}
	if cfg.PeriodEpochs == 0 {
		cfg.PeriodEpochs = core.DefaultOptimizerPeriodEpochs
	}
	s := &Searcher{
		k: cfg.K, opts: cfg.Options.withDefaults(),
		maxTries: cfg.MaxTries, refineTries: 2, settle: cfg.SettleEpochs,
		measure: cfg.MeasureEpochs, period: cfg.PeriodEpochs,
		ipsTarget: core.DefaultIPSTarget, powerTarget: core.DefaultPowerTarget,
	}
	s.Reset()
	return s, nil
}

// Name implements core.ArchController.
func (s *Searcher) Name() string { return "Heuristic" }

// SetTargets implements core.ArchController (unused by the search, kept
// for interface compatibility).
func (s *Searcher) SetTargets(ips, power float64) { s.ipsTarget, s.powerTarget = ips, power }

// Targets implements core.ArchController.
func (s *Searcher) Targets() (float64, float64) { return s.ipsTarget, s.powerTarget }

// Reset implements core.ArchController: the next Step starts a full
// search from the midrange configuration.
func (s *Searcher) Reset() {
	s.state = searchInit
	s.stateEpochs = 0
	s.tries = 0
	s.triesBudget = s.maxTries
	s.forceMid = true
	s.rankPos = 0
	s.dir = +1
	s.cur = sim.MidrangeConfig()
	s.bestCfg = s.cur
	s.bestMetric = 0
	s.sincePeriod = 0
	s.havePhase = false
	s.backoff = 1
	s.clearMeasure()
}

// refine begins a periodic refinement episode at the current point.
func (s *Searcher) refine() {
	s.state = searchInit
	s.stateEpochs = 0
	s.tries = 0
	s.triesBudget = s.refineTries
	s.forceMid = false
	s.rankPos = 0
	s.dir = +1
	s.bestCfg = s.cur
	s.bestMetric = 0
	s.sincePeriod = 0
	s.clearMeasure()
}

func (s *Searcher) clearMeasure() { s.sumIPS, s.sumP, s.sumL2, s.sumN = 0, 0, 0, 0 }

func (s *Searcher) metric(ips, power float64) float64 {
	if power <= 0 {
		return 0
	}
	return math.Pow(ips, float64(s.k)) / power
}

// Step implements core.ArchController.
func (s *Searcher) Step(t sim.Telemetry) sim.Config {
	if s.havePhase && t.PhaseID != s.lastPhase {
		s.Reset()
	}
	s.lastPhase = t.PhaseID
	s.havePhase = true
	s.sincePeriod++
	s.stateEpochs++

	switch s.state {
	case searchInit:
		if s.stateEpochs > s.settle && usable(t.IPS) && usable(t.PowerW) && usable(t.L2MPKI) {
			s.sumIPS += t.IPS
			s.sumP += t.PowerW
			s.sumL2 += t.L2MPKI
			s.sumN++
		}
		if s.stateEpochs >= s.settle+s.measure && s.sumN > 0 {
			ips := s.sumIPS / float64(s.sumN)
			p := s.sumP / float64(s.sumN)
			l2 := s.sumL2 / float64(s.sumN)
			s.bestCfg = s.cur
			s.bestMetric = s.metric(ips, p)
			// Rank features by expected impact for this application
			// (Isci-style): memory-bound apps rank the cache first.
			// Reuse the rank slice's backing array across search
			// episodes: a long-lived searcher re-ranks every period and
			// must not allocate in steady state.
			if l2 > s.opts.MemBoundL2MPKI {
				if s.opts.ThreeInput {
					s.rank = append(s.rank[:0], knobCache, knobROB, knobFreq)
				} else {
					s.rank = append(s.rank[:0], knobCache, knobFreq)
				}
			} else {
				if s.opts.ThreeInput {
					s.rank = append(s.rank[:0], knobFreq, knobROB, knobCache)
				} else {
					s.rank = append(s.rank[:0], knobFreq, knobCache)
				}
			}
			s.rankPos = 0
			s.dir = +1
			s.nextTrial()
		}
		return s.cur

	case searchTrial:
		if s.stateEpochs > s.settle && usable(t.IPS) && usable(t.PowerW) {
			s.sumIPS += t.IPS
			s.sumP += t.PowerW
			s.sumN++
		}
		if s.stateEpochs >= s.settle+s.measure && s.sumN > 0 {
			ips := s.sumIPS / float64(s.sumN)
			p := s.sumP / float64(s.sumN)
			m := s.metric(ips, p)
			if m > s.bestMetric {
				// Keep the move and continue along this knob.
				s.bestMetric = m
				s.bestCfg = s.cur
				s.backoff = 1
			} else {
				// Undo; try the other direction once, else next feature.
				s.cur = s.bestCfg
				if s.dir == +1 {
					s.dir = -1
				} else {
					s.dir = +1
					s.rankPos++
				}
			}
			if s.tries >= s.triesBudget || s.rankPos >= len(s.rank) {
				s.state = searchHold
				s.cur = s.bestCfg
				if s.backoff < 16 {
					s.backoff *= 2
				}
			} else {
				s.nextTrial()
			}
		}
		return s.cur

	default: // searchHold
		// Fruitless refinements back off exponentially, like the MIMO
		// optimizer, so a converged search stops paying exploration cost.
		if s.sincePeriod >= s.period*s.backoff {
			s.refine()
		}
		return s.cur
	}
}

// nextTrial moves the currently ranked knob one step in s.dir; if the
// knob is exhausted in that direction, it advances to the next feature.
func (s *Searcher) nextTrial() {
	for s.rankPos < len(s.rank) {
		if s.moveKnob(s.rank[s.rankPos], s.dir) {
			s.state = searchTrial
			s.stateEpochs = 0
			s.tries++
			s.clearMeasure()
			return
		}
		// Exhausted this direction: flip once, then move on.
		if s.dir == +1 {
			s.dir = -1
		} else {
			s.dir = +1
			s.rankPos++
		}
	}
	s.state = searchHold
	s.cur = s.bestCfg
}

// moveKnob steps one configuration index, reporting success. "Growing"
// the cache means a smaller CacheIdx (settings are largest-first).
func (s *Searcher) moveKnob(k knob, dir int) bool {
	switch k {
	case knobFreq:
		next := s.cur.FreqIdx + dir
		if next < 0 || next >= len(sim.FreqSettingsGHz) {
			return false
		}
		s.cur.FreqIdx = next
	case knobCache:
		next := s.cur.CacheIdx - dir
		if next < 0 || next >= len(sim.CacheSettings) {
			return false
		}
		s.cur.CacheIdx = next
	default:
		next := s.cur.ROBIdx + dir
		if next < 0 || next >= len(sim.ROBSettings) {
			return false
		}
		s.cur.ROBIdx = next
	}
	return true
}
