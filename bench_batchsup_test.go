package mimoctl_test

// Supervised fleet stepping benchmarks: N supervised control loops
// (sanitize → inner LQG step → divergence monitoring → quantize)
// advanced one epoch each, on the scalar path (one supervisor.Supervised
// per loop dispatched as parallel-runner jobs) versus the batched
// supervised lane tier (internal/batch.SupEngine, one fused pass over
// the supervisor + Kalman/LQG structure-of-arrays).
//
// Both sides run monitor-less engaged supervisors past their grace
// period — the nominal steady state where the alarm EMAs are live — on
// identical telemetry with targets pinned to each lane's operating
// point so no lane ever leaves the fast path. Both report ns/lanestep;
// cmd/benchcmp gates the ratio at >= 3x (make bench-batchsup) alongside
// the 0 allocs/op pin on the fused kernel.

import (
	"math/rand"
	"testing"

	"mimoctl/internal/batch"
	"mimoctl/internal/experiments"
	"mimoctl/internal/runner"
	"mimoctl/internal/sim"
	"mimoctl/internal/supervisor"
)

// supFleetWarmEpochs steps each lane past the grace period before
// timing starts, so the measured path includes the innovation and
// divergence EMA evaluations.
const supFleetWarmEpochs = 100

// fleetSupTelemetry draws per-lane operating points inside the default
// plausibility bounds; targets are pinned to these exact points so the
// tracking-error EMA settles near zero and every lane stays nominal.
func fleetSupTelemetry(n int) []sim.Telemetry {
	rng := rand.New(rand.NewSource(11))
	tels := make([]sim.Telemetry, n)
	for i := range tels {
		tels[i] = sim.Telemetry{
			IPS:    1 + rng.Float64()*2,
			PowerW: 4 + rng.Float64()*4,
			Config: sim.MidrangeConfig(),
		}
	}
	return tels
}

// fleetSupervised clones the memoized 3-input design into n supervised
// loops targeted at their own telemetry.
func fleetSupervised(b *testing.B, tels []sim.Telemetry) []*supervisor.Supervised {
	b.Helper()
	base, _, err := experiments.DesignedMIMO(true, experiments.DefaultSeed)
	if err != nil {
		b.Fatal(err)
	}
	sups := make([]*supervisor.Supervised, len(tels))
	for i := range sups {
		c := base.Clone()
		c.Reset()
		s := supervisor.New(c, supervisor.Options{GraceEpochs: 60})
		s.SetTargets(tels[i].IPS, tels[i].PowerW)
		sups[i] = s
	}
	return sups
}

// BenchmarkFleetSupervisedScalar1024 is the baseline: each supervised
// loop is one runner job, the architecture the fault sweeps used before
// the supervised lane tier.
func BenchmarkFleetSupervisedScalar1024(b *testing.B) {
	tels := fleetSupTelemetry(fleetLanes)
	sups := fleetSupervised(b, tels)
	for w := 0; w < supFleetWarmEpochs; w++ {
		for i, s := range sups {
			sink = s.Step(tels[i])
		}
	}
	jobs := make([]runner.Job, fleetLanes)
	for i := range jobs {
		s, tel := sups[i], &tels[i]
		jobs[i] = runner.Job{
			Label: "lane",
			Run: func() error {
				for e := 0; e < fleetEpochsPerOp; e++ {
					sink = s.Step(*tel)
				}
				return nil
			},
		}
	}
	workers := runner.DefaultWorkers()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := runner.Run(jobs, workers); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportLaneStep(b)
}

// BenchmarkFleetSupervisedBatch1024 steps the same supervised fleet
// through the fused SoA kernel.
func BenchmarkFleetSupervisedBatch1024(b *testing.B) {
	tels := fleetSupTelemetry(fleetLanes)
	sups := fleetSupervised(b, tels)
	e, err := batch.FromSupervisedFleet(sups)
	if err != nil {
		b.Fatal(err)
	}
	outs := make([]sim.Config, fleetLanes)
	for w := 0; w < supFleetWarmEpochs; w++ {
		if err := e.StepAll(tels, outs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for ep := 0; ep < fleetEpochsPerOp; ep++ {
			if err := e.StepAll(tels, outs); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	for i := 0; i < fleetLanes; i++ {
		if e.Parked(i) {
			b.Fatalf("lane %d left the fast path during the benchmark", i)
		}
	}
	reportLaneStep(b)
}
