#!/bin/sh
# Default verify flow: vet, build, race-enabled tests.
# Run from the repo root: ./scripts/check.sh  (or: make check)
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "== ok"
