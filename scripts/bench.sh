#!/bin/sh
# Run the benchmark suite and capture machine-readable results.
#
#   ./scripts/bench.sh                     # full suite -> BENCH_seed.json
#   BENCH=Telemetry ./scripts/bench.sh     # only the overhead benches
#   BENCHTIME=2s OUT=bench.json ./scripts/bench.sh
#
# The JSON stream is `go test -json` output: one object per line, with
# benchmark results in the Output fields of "output" actions. Compare
# runs with `benchstat` or grep for the ns/op lines directly.
set -eu

cd "$(dirname "$0")/.."

pattern="${BENCH:-.}"
benchtime="${BENCHTIME:-1x}"
out="${OUT:-BENCH_seed.json}"

echo "== go test -bench $pattern -benchtime $benchtime -> $out"
go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" -json . > "$out"

grep -o '"Output":".*ns/op[^"]*"' "$out" | sed 's/"Output":"//; s/\\t/  /g; s/\\n"//' || true
echo "== wrote $out"
