#!/bin/sh
# Run the benchmark suite and capture machine-readable results.
#
#   ./scripts/bench.sh                     # full suite -> BENCH_seed.json
#   BENCH=Telemetry ./scripts/bench.sh     # only the overhead benches
#   BENCHTIME=2s OUT=bench.json ./scripts/bench.sh
#   PARALLEL=1 ./scripts/bench.sh          # engine benches -> BENCH_parallel.json
#   OBS=1 ./scripts/bench.sh               # observability overhead -> BENCH_obs.json
#   BATCH=1 ./scripts/bench.sh             # batched fleet backend -> BENCH_batch.json
#   BATCHSUP=1 ./scripts/bench.sh          # batched supervised tier -> BENCH_batchsup.json
#   TSDB=1 ./scripts/bench.sh              # telemetry-history overhead -> BENCH_tsdb.json
#
# The JSON stream is `go test -json` output: one object per line, with
# benchmark results in the Output fields of "output" actions. Compare
# runs with `benchstat` or grep for the ns/op lines directly.
#
# OBS=1 runs only the observability-plane overhead benchmarks: the
# supervised controller step at every attachment tier (detached /
# fleet / fleet+metrics / fleet+events — events-off must stay at
# 0 allocs/op, also gated by TestObsOffStepAllocFree) and the full
# experiment suite with the plane detached vs attached (<5% budget).
#
# BATCH=1 runs the batched structure-of-arrays fleet benchmarks: the
# 1024-loop scalar fleet baseline vs the batch engine (root package,
# both reporting ns/lanestep and epochs/sec) plus the batch kernel's
# own 0 allocs/op benchmark. make bench-batch wraps this with the
# benchcmp alloc + >=5x speedup gates. Use a time-based BENCHTIME
# (e.g. 3s) for a meaningful throughput ratio.
#
# BATCHSUP=1 runs the batched supervised-tier benchmarks: the 1024-loop
# scalar supervised fleet baseline vs the fused SoA supervisor kernel
# (root package, ns/lanestep and epochs/sec) plus that kernel's own
# 0 allocs/op benchmark. make bench-batchsup wraps this with the
# benchcmp alloc + >=3x speedup gates.
#
# TSDB=1 runs the telemetry-history benchmarks: the recorder's batch
# ingest path (internal/tsdb, required to stay at 0 allocs/op) and the
# full experiment suite with the observability plane attached, bus
# draining into no sinks vs into the history recorder (root package) —
# the detached/attached ns/op ratio is the <5% history budget that
# make bench-tsdb gates via cmd/benchcmp.
#
# PARALLEL=1 runs only the parallel experiment engine benchmarks:
# BenchmarkExpAll (the full suite at 0/1/4 workers) and the runner's
# BenchmarkRunnerWallClock (latency-bound jobs, where pool overlap shows
# even on one CPU). Note ExpAll speedup is hardware-dependent: the jobs
# are CPU-bound, so a host with one usable CPU shows parity there while
# RunnerWallClock still demonstrates the pool's concurrency.
set -eu

cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-1x}"

if [ "${OBS:-0}" = "1" ]; then
    out="${OUT:-BENCH_obs.json}"
    echo "== go test -bench 'SupervisedStepObs|ObsSuiteOverhead' -benchtime $benchtime -> $out"
    go test -run '^$' -bench 'SupervisedStepObs|ObsSuiteOverhead' -benchmem -benchtime "$benchtime" -json . > "$out"
elif [ "${BATCH:-0}" = "1" ]; then
    out="${OUT:-BENCH_batch.json}"
    echo "== go test -bench '(FleetScalarStep1024|FleetBatchStep1024|BatchStep)\$' -benchtime $benchtime -> $out"
    go test -run '^$' -bench '(FleetScalarStep1024|FleetBatchStep1024|BatchStep)$' -benchmem -benchtime "$benchtime" -json . ./internal/batch > "$out"
elif [ "${BATCHSUP:-0}" = "1" ]; then
    out="${OUT:-BENCH_batchsup.json}"
    echo "== go test -bench '(FleetSupervisedScalar1024|FleetSupervisedBatch1024|BatchSupervisedStep)\$' -benchtime $benchtime -> $out"
    go test -run '^$' -bench '(FleetSupervisedScalar1024|FleetSupervisedBatch1024|BatchSupervisedStep)$' -benchmem -benchtime "$benchtime" -json . ./internal/batch > "$out"
elif [ "${TSDB:-0}" = "1" ]; then
    out="${OUT:-BENCH_tsdb.json}"
    echo "== go test -bench 'TSDBIngest|TSDBSuite' -benchtime $benchtime -> $out"
    go test -run '^$' -bench 'TSDBIngest|TSDBSuite' -benchmem -benchtime "$benchtime" -json . ./internal/tsdb > "$out"
elif [ "${PARALLEL:-0}" = "1" ]; then
    out="${OUT:-BENCH_parallel.json}"
    echo "== go test -bench 'ExpAll|RunnerWallClock' -benchtime $benchtime -> $out"
    go test -run '^$' -bench 'ExpAll|RunnerWallClock' -benchmem -benchtime "$benchtime" -json . ./internal/runner > "$out"
else
    pattern="${BENCH:-.}"
    out="${OUT:-BENCH_seed.json}"
    echo "== go test -bench $pattern -benchtime $benchtime -> $out"
    go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" -json . > "$out"
fi

grep -o '"Output":".*ns/op[^"]*"' "$out" | sed 's/"Output":"//; s/\\t/  /g; s/\\n"//' || true
echo "== wrote $out"
