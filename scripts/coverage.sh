#!/bin/sh
# Coverage gate: run the full test suite with a coverage profile, fail
# if the repo-wide total drops below the floor, and print the
# per-package delta against the committed baseline so a regression is
# attributable to a package, not just a number.
#
#   ./scripts/coverage.sh            # check (FLOOR default below)
#   UPDATE=1 ./scripts/coverage.sh   # refresh scripts/coverage_baseline.txt
#   FLOOR=75 ./scripts/coverage.sh   # override the floor
#
# The floor is the seed repository's total; raising it as coverage grows
# is encouraged, lowering it needs a reason in the commit message.
set -eu

cd "$(dirname "$0")/.."

floor="${FLOOR:-78.0}"
profile="${PROFILE:-coverage.out}"
baseline="scripts/coverage_baseline.txt"

echo "== go test -coverprofile $profile ./..."
go test -coverprofile "$profile" ./... > /tmp/coverage_run.txt 2>&1 || {
    cat /tmp/coverage_run.txt
    exit 1
}

# Per-package percentages from the run output: "ok  pkg  time  coverage: NN.N% ..."
current=$(awk '/^ok / && /coverage:/ {
    for (i = 1; i <= NF; i++)
        if ($i == "coverage:" && $(i+1) ~ /%$/) { gsub("%", "", $(i+1)); print $2, $(i+1) }
}' /tmp/coverage_run.txt | sort)

if [ "${UPDATE:-0}" = "1" ]; then
    printf '%s\n' "$current" > "$baseline"
    echo "== wrote $baseline"
fi

if [ -f "$baseline" ]; then
    echo "== per-package coverage delta vs $baseline"
    printf '%s\n' "$current" | while read -r pkg pct; do
        base=$(awk -v p="$pkg" '$1 == p { print $2 }' "$baseline")
        if [ -n "$base" ]; then
            delta=$(awk -v a="$pct" -v b="$base" 'BEGIN { printf "%+.1f", a - b }')
            echo "  $pkg: ${pct}% (baseline ${base}%, ${delta})"
        else
            echo "  $pkg: ${pct}% (new package)"
        fi
    done
fi

total=$(go tool cover -func="$profile" | awk '/^total:/ { gsub("%", ""); print $NF }')
echo "== total coverage: ${total}% (floor ${floor}%)"
awk -v t="$total" -v f="$floor" 'BEGIN { exit (t + 0 < f + 0) ? 1 : 0 }' || {
    echo "== FAIL: total coverage ${total}% is below the ${floor}% floor"
    exit 1
}
echo "== ok"
