module mimoctl

go 1.22
