package mimoctl_test

// Fleet-scale stepping benchmarks: N independent MIMO control loops
// advanced one epoch each, on the scalar path (one cloned controller
// per loop, dispatched as parallel-runner jobs — the pre-batch fleet
// architecture) versus the batched structure-of-arrays engine
// (internal/batch, one fused kernel pass over all lanes).
//
// Both report ns/lanestep — cost per (loop, epoch) — on identical
// synthetic telemetry streams, so the ratio is the batch speedup.
// cmd/benchcmp gates it at >= 5x (make bench-batch), alongside the
// 0 allocs/op gate on the batch kernel itself.

import (
	"math/rand"
	"testing"

	"mimoctl/internal/batch"
	"mimoctl/internal/core"
	"mimoctl/internal/experiments"
	"mimoctl/internal/runner"
	"mimoctl/internal/sim"
)

const (
	fleetLanes       = 1024
	fleetEpochsPerOp = 16 // epochs each lane advances per benchmark op
)

// sink keeps the scalar jobs' Step results observable so the calls
// cannot be optimized away.
var sink sim.Config

// fleetTelemetry builds per-lane synthetic telemetry. The controllers'
// cost is telemetry-independent (same instruction path for any finite
// values), so fixed inputs measure the steady-state step fairly; the
// Config field only matters before a lane's first step, so neither side
// feeds the chosen configuration back.
func fleetTelemetry(n int) []sim.Telemetry {
	rng := rand.New(rand.NewSource(9))
	tels := make([]sim.Telemetry, n)
	for i := range tels {
		tels[i] = sim.Telemetry{
			IPS:    rng.Float64() * 5,
			PowerW: rng.Float64() * 25,
			Config: sim.MidrangeConfig(),
		}
	}
	return tels
}

// fleetControllers clones the memoized 3-input design into n
// independently targeted loops.
func fleetControllers(b *testing.B, n int) []*core.MIMOController {
	b.Helper()
	base, _, err := experiments.DesignedMIMO(true, experiments.DefaultSeed)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	ctrls := make([]*core.MIMOController, n)
	for i := range ctrls {
		c := base.Clone()
		c.Reset()
		c.SetTargets(1+rng.Float64()*3, 1+rng.Float64()*20)
		ctrls[i] = c
	}
	return ctrls
}

// BenchmarkFleetScalarStep1024 is the baseline: each loop is one runner
// job stepping its own cloned controller, the architecture every
// experiment used before the batch engine.
func BenchmarkFleetScalarStep1024(b *testing.B) {
	ctrls := fleetControllers(b, fleetLanes)
	tels := fleetTelemetry(fleetLanes)
	jobs := make([]runner.Job, fleetLanes)
	for i := range jobs {
		c, tel := ctrls[i], &tels[i]
		jobs[i] = runner.Job{
			Label: "lane",
			Run: func() error {
				for e := 0; e < fleetEpochsPerOp; e++ {
					sink = c.Step(*tel)
				}
				return nil
			},
		}
	}
	workers := runner.DefaultWorkers()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := runner.Run(jobs, workers); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportLaneStep(b)
}

// BenchmarkFleetBatchStep1024 steps the same fleet through the fused
// structure-of-arrays kernels.
func BenchmarkFleetBatchStep1024(b *testing.B) {
	ctrls := fleetControllers(b, fleetLanes)
	e, err := batch.FromControllers(ctrls)
	if err != nil {
		b.Fatal(err)
	}
	tels := fleetTelemetry(fleetLanes)
	outs := make([]sim.Config, fleetLanes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for ep := 0; ep < fleetEpochsPerOp; ep++ {
			if err := e.StepAll(tels, outs); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	reportLaneStep(b)
}

func reportLaneStep(b *testing.B) {
	laneSteps := float64(b.N) * fleetLanes * fleetEpochsPerOp
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/laneSteps, "ns/lanestep")
	b.ReportMetric(laneSteps/b.Elapsed().Seconds(), "epochs/sec")
}
