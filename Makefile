GO ?= go

.PHONY: check vet build test race bench

# check is the default verify flow: vet + build + race-enabled tests.
check:
	./scripts/check.sh

# bench runs the benchmark suite (paper figures + substrate hot paths +
# telemetry overhead) and writes BENCH_seed.json; see scripts/bench.sh
# for the BENCH / BENCHTIME / OUT knobs.
bench:
	./scripts/bench.sh

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...
