GO ?= go

.PHONY: check vet build test race bench bench-obs bench-batch bench-batchsup bench-tsdb benchcmp cover fuzz golden golden-doctor golden-tsdb

# check is the default verify flow: vet + build + race-enabled tests.
check:
	./scripts/check.sh

# cover enforces the coverage floor and prints per-package deltas
# against scripts/coverage_baseline.txt (UPDATE=1 refreshes it).
cover:
	./scripts/coverage.sh

# fuzz gives every fuzz target a short exploratory run (CI smoke time);
# raise FUZZTIME for a deeper local session.
fuzz:
	$(GO) test ./internal/telemetry/ -run '^$$' -fuzz FuzzLabelRoundTrip -fuzztime $(or $(FUZZTIME),10s)
	$(GO) test ./internal/sysid/ -run '^$$' -fuzz FuzzPRBS -fuzztime $(or $(FUZZTIME),10s)
	$(GO) test ./internal/sysid/ -run '^$$' -fuzz FuzzQuantizeTo -fuzztime $(or $(FUZZTIME),10s)
	$(GO) test ./internal/experiments/ -run '^$$' -fuzz 'FuzzSteadyStateEpoch$$' -fuzztime $(or $(FUZZTIME),10s)
	$(GO) test ./internal/experiments/ -run '^$$' -fuzz FuzzSteadyStateEpochEMA -fuzztime $(or $(FUZZTIME),10s)
	$(GO) test ./internal/batch/ -run '^$$' -fuzz FuzzBatchVsScalarStep -fuzztime $(or $(FUZZTIME),10s)
	$(GO) test ./internal/batch/ -run '^$$' -fuzz FuzzQuantHysteresis -fuzztime $(or $(FUZZTIME),10s)
	$(GO) test ./internal/batch/ -run '^$$' -fuzz FuzzSupervisedBatchVsScalar -fuzztime $(or $(FUZZTIME),10s)
	$(GO) test ./internal/tsdb/ -run '^$$' -fuzz FuzzBlockRoundTrip -fuzztime $(or $(FUZZTIME),10s)

# golden re-records the golden regression CSVs after an intentional
# output change; review the diff like code.
golden:
	$(GO) test ./internal/experiments/ -run TestGolden -update

# golden-doctor re-records the committed flight-recorder dumps the
# mimodoctor smoke job diagnoses (testdata/golden/doctor_sensor-freeze.frec
# and doctor_plant-drift.frec); needed after an intentional
# recording-format or control-loop change.
golden-doctor:
	$(GO) test ./internal/experiments/ -run TestGoldenDoctorDump -update

# golden-tsdb re-records the committed baseline telemetry snapshot
# (testdata/golden/tsdb_baseline.json) the drift detector scores live
# runs against; needed after an intentional control-loop or
# history-recording change. Review the stat drift like code.
golden-tsdb:
	$(GO) test ./internal/experiments/ -run TestHistoryBaselineDrift -update

# bench runs the benchmark suite (paper figures + substrate hot paths +
# telemetry overhead) and writes BENCH_seed.json; see scripts/bench.sh
# for the BENCH / BENCHTIME / OUT knobs.
bench:
	./scripts/bench.sh

# bench-obs measures the fleet observability plane's overhead (the
# supervised step at every attachment tier plus the full suite with
# scopes+events on) and writes BENCH_obs.json.
bench-obs:
	OBS=1 ./scripts/bench.sh

# bench-batch re-measures the batched fleet backend into
# BENCH_batch_new.json and gates it against the committed
# BENCH_batch.json: the batch kernel must stay at 0 allocs/op and the
# scalar fleet's ns/lanestep over the batch engine's must stay >= 5x
# (MIN_SPEEDUP overrides the floor, e.g. for noisy shared runners).
MIN_SPEEDUP ?= 5
bench-batch:
	BATCH=1 BENCHTIME=$(or $(BENCHTIME),3s) OUT=BENCH_batch_new.json ./scripts/bench.sh
	$(GO) run ./cmd/benchcmp -gate 'BenchmarkBatchStep$$' \
		-speedup BenchmarkFleetScalarStep1024/BenchmarkFleetBatchStep1024 \
		-speedup-unit ns/lanestep -min-speedup $(MIN_SPEEDUP) \
		BENCH_batch.json BENCH_batch_new.json

# bench-batchsup re-measures the batched supervised lane tier into
# BENCH_batchsup_new.json and gates it against the committed
# BENCH_batchsup.json: the fused supervisor kernel must stay at
# 0 allocs/op and the scalar supervised fleet's ns/lanestep over the
# batch tier's must stay >= 3x (MIN_SUP_SPEEDUP overrides the floor).
MIN_SUP_SPEEDUP ?= 3
bench-batchsup:
	BATCHSUP=1 BENCHTIME=$(or $(BENCHTIME),3s) OUT=BENCH_batchsup_new.json ./scripts/bench.sh
	$(GO) run ./cmd/benchcmp -gate 'BenchmarkBatchSupervisedStep$$' \
		-speedup BenchmarkFleetSupervisedScalar1024/BenchmarkFleetSupervisedBatch1024 \
		-speedup-unit ns/lanestep -min-speedup $(MIN_SUP_SPEEDUP) \
		BENCH_batchsup.json BENCH_batchsup_new.json

# bench-tsdb re-measures the telemetry-history overhead into
# BENCH_tsdb_new.json and gates it against the committed
# BENCH_tsdb.json: the recorder's batch ingest must stay at 0 allocs/op
# and the full suite with history recording may cost at most ~5% over
# the observability plane alone (detached/attached ns/op ratio >=
# MIN_TSDB_RATIO; lower it on noisy shared runners).
MIN_TSDB_RATIO ?= 0.95
bench-tsdb:
	TSDB=1 BENCHTIME=$(or $(BENCHTIME),3x) OUT=BENCH_tsdb_new.json ./scripts/bench.sh
	$(GO) run ./cmd/benchcmp -gate 'BenchmarkTSDBIngest$$' \
		-speedup BenchmarkTSDBSuiteDetached/BenchmarkTSDBSuiteAttached \
		-speedup-unit ns/op -min-speedup $(MIN_TSDB_RATIO) \
		BENCH_tsdb.json BENCH_tsdb_new.json

# benchcmp re-runs the engine benchmarks into BENCH_alloc.json and
# diffs them against the committed BENCH_parallel.json baseline,
# failing on a >20% allocs/op regression in BenchmarkExpAll (the
# steady-state loop is required to stay allocation-free; see DESIGN.md
# "Hot path and memory discipline").
benchcmp:
	PARALLEL=1 OUT=BENCH_alloc.json ./scripts/bench.sh
	$(GO) run ./cmd/benchcmp BENCH_parallel.json BENCH_alloc.json

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...
