GO ?= go

.PHONY: check vet build test race

# check is the default verify flow: vet + build + race-enabled tests.
check:
	./scripts/check.sh

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...
