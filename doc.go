// Package mimoctl reproduces "Using Multiple Input, Multiple Output
// Formal Control to Maximize Resource Efficiency in Architectures"
// (Pothukuchi, Ansari, Voulgaris, Torrellas — ISCA 2016): MIMO LQG
// controllers that tune processor knobs (DVFS frequency, cache ways,
// ROB size) to control power and performance in a coordinated way.
//
// The library is organized as internal packages — see DESIGN.md for the
// full inventory — with runnable entry points under cmd/ and examples/,
// and a benchmark per paper figure/table in bench_test.go:
//
//   - internal/mat, internal/lti, internal/sysid, internal/lqg,
//     internal/robust: the numerical control stack (linear algebra,
//     state-space systems, black-box identification, LQG synthesis,
//     robust stability analysis);
//   - internal/sim, internal/workloads: the processor/power simulator
//     substrate and SPEC CPU2006-like workload profiles;
//   - internal/core: the paper's contribution — the MIMO architecture
//     controller, the Fig. 3 design flow, the E·D^k optimizer, and the
//     battery/QoE reference scheduler;
//   - internal/heuristic, internal/decoupled: the paper's comparison
//     architectures;
//   - internal/experiments: one runner per evaluation figure/table.
package mimoctl
