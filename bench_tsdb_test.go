package mimoctl_test

// Overhead proof for the telemetry-history store (the <5% observability
// budget from DESIGN.md): the full experiment suite runs with the fleet
// plane attached twice — once with the bus draining into no sinks, once
// with the tsdb recorder tapped on — so the ratio isolates what history
// recording adds on top of the already-gated observability cost. The
// recorder rides the pump goroutine, so on a multi-core host the delta
// is near zero; on a single-CPU host the pump serializes with the
// producers and the gate still must hold.
//
// Run with: TSDB=1 ./scripts/bench.sh  (make bench-tsdb gates the
// captured ratio via cmd/benchcmp against BENCH_tsdb.json.)

import (
	"testing"

	"mimoctl/internal/experiments"
	"mimoctl/internal/obs"
	"mimoctl/internal/telemetry"
	"mimoctl/internal/tsdb"
)

// benchSuiteWithObs runs the full suite with the fleet plane attached,
// optionally recording telemetry history as a bus sink.
func benchSuiteWithObs(b *testing.B, history bool) {
	warmExpDesigns(b)
	var sinks []obs.Sink
	var fleet *obs.Fleet
	if history {
		db := tsdb.New(tsdb.Options{})
		sinks = append(sinks, tsdb.NewRecorder(db, func(id uint32) string { return fleet.LoopName(id) }))
	}
	bus := obs.NewBus(1<<14, sinks...)
	fleet = obs.NewFleet(obs.Options{Registry: telemetry.NewRegistry(), Bus: bus})
	experiments.SetObservability(fleet)
	defer func() {
		experiments.SetObservability(nil)
		if err := bus.Close(); err != nil {
			b.Fatal(err)
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runExpAll(b)
	}
}

func BenchmarkTSDBSuiteDetached(b *testing.B) { benchSuiteWithObs(b, false) }

func BenchmarkTSDBSuiteAttached(b *testing.B) { benchSuiteWithObs(b, true) }
