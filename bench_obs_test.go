package mimoctl_test

// Overhead proof for the fleet observability plane (DESIGN.md "Hot path
// and memory discipline"): the supervised controller step is benchmarked
// with observability detached (the seed hot path — one nil check per
// epoch), with a fleet loop attached (SLO scoring + scoped counters),
// and with the event bus publishing a wide event per epoch. The
// acceptance budget is zero allocations with events off and <5% ns/op
// overhead for the full experiment suite with the plane enabled.
//
// Run with: OBS=1 ./scripts/bench.sh  (or go test -bench=Obs -benchmem)

import (
	"testing"

	"mimoctl/internal/experiments"
	"mimoctl/internal/obs"
	"mimoctl/internal/sim"
	"mimoctl/internal/supervisor"
	"mimoctl/internal/telemetry"
)

// benchTel is one clean mid-range epoch of plant telemetry.
func benchTel() sim.Telemetry {
	return sim.Telemetry{IPS: 2.3, PowerW: 1.9, TrueIPS: 2.3, TruePowerW: 1.9,
		L1MPKI: 10, L2MPKI: 3, Config: sim.MidrangeConfig()}
}

func BenchmarkSupervisedStepObs(b *testing.B) {
	proto, _, err := experiments.DesignedMIMO(false, experiments.DefaultSeed)
	if err != nil {
		b.Fatal(err)
	}
	// Each tier builds its own fleet so SLO windows and counters start
	// cold; the bus tier drains into a no-sink pump (sink cost is the
	// writer's, not the control loop's).
	tiers := []struct {
		name string
		loop func(b *testing.B) (*obs.Loop, func())
	}{
		{"detached", func(b *testing.B) (*obs.Loop, func()) { return nil, func() {} }},
		{"fleet", func(b *testing.B) (*obs.Loop, func()) {
			f := obs.NewFleet(obs.Options{})
			return f.Register("bench"), func() {}
		}},
		{"fleet+metrics", func(b *testing.B) (*obs.Loop, func()) {
			f := obs.NewFleet(obs.Options{Registry: telemetry.NewRegistry()})
			return f.Register("bench"), func() {}
		}},
		{"fleet+events", func(b *testing.B) (*obs.Loop, func()) {
			bus := obs.NewBus(1 << 14)
			f := obs.NewFleet(obs.Options{Registry: telemetry.NewRegistry(), Bus: bus})
			return f.Register("bench"), func() {
				if err := bus.Close(); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
	for _, tier := range tiers {
		b.Run(tier.name, func(b *testing.B) {
			loop, done := tier.loop(b)
			defer done()
			sup := supervisor.New(proto.Clone(), supervisor.Options{})
			sup.SetTargets(2.5, 2.0)
			sup.SetLoopObs(loop)
			tel := benchTel()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tel.Epoch = i
				tel.Config = sup.Step(tel)
			}
		})
	}
}

// BenchmarkObsSuiteOverhead runs one pass of every experiment with the
// observability plane detached and attached (fleet + registry + bus, no
// sinks) — the end-to-end cost of leaving per-loop scopes and events on
// in CI. Named so the PARALLEL=1 capture's 'ExpAll' pattern does not
// pick it up.
func BenchmarkObsSuiteOverhead(b *testing.B) {
	warmExpDesigns(b)
	for _, attached := range []bool{false, true} {
		name := "detached"
		if attached {
			name = "attached"
		}
		b.Run(name, func(b *testing.B) {
			if attached {
				bus := obs.NewBus(1 << 14)
				fleet := obs.NewFleet(obs.Options{Registry: telemetry.NewRegistry(), Bus: bus})
				experiments.SetObservability(fleet)
				defer func() {
					experiments.SetObservability(nil)
					if err := bus.Close(); err != nil {
						b.Fatal(err)
					}
				}()
			}
			for i := 0; i < b.N; i++ {
				runExpAll(b)
			}
		})
	}
}

// TestObsOffStepAllocFree pins the events-off hot path at zero
// allocations per epoch: the bare MIMO controller step (the seed gate)
// and the supervised step with a fleet loop attached but no event bus —
// SLO scoring and scoped counters must not cost heap.
func TestObsOffStepAllocFree(t *testing.T) {
	proto, _, err := experiments.DesignedMIMO(false, experiments.DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}

	ctrl := proto.Clone()
	ctrl.Reset()
	ctrl.SetTargets(2.5, 2.0)
	tel := benchTel()
	if n := testing.AllocsPerRun(200, func() {
		tel.Config = ctrl.Step(tel)
	}); n != 0 {
		t.Fatalf("MIMOController.Step allocates %.1f/op with observability off, want 0", n)
	}

	f := obs.NewFleet(obs.Options{Registry: telemetry.NewRegistry()})
	sup := supervisor.New(proto.Clone(), supervisor.Options{})
	sup.SetTargets(2.5, 2.0)
	sup.SetLoopObs(f.Register("gate"))
	st := benchTel()
	epoch := 0
	// Warm up past the engage/hold transient and first-epoch latches.
	for ; epoch < 64; epoch++ {
		st.Epoch = epoch
		st.Config = sup.Step(st)
	}
	if n := testing.AllocsPerRun(200, func() {
		st.Epoch = epoch
		epoch++
		st.Config = sup.Step(st)
	}); n != 0 {
		t.Fatalf("Supervised.Step allocates %.1f/op with events off, want 0", n)
	}
}
