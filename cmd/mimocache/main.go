// Command mimocache exercises the set-associative cache simulator: it
// generates a synthetic address trace with the given locality profile,
// replays it through the modeled L1/L2 geometries at every enabled-way
// count, and fits the power-law miss curve the epoch-level processor
// model uses. This is the calibration path behind the per-workload miss
// curves in internal/workloads.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"mimoctl/internal/sim"
	"mimoctl/internal/telemetry"
)

func main() {
	var (
		seed        = flag.Int64("seed", 1, "trace generator seed")
		accesses    = flag.Int("accesses", 200000, "trace length in accesses")
		warmup      = flag.Int("warmup", 20000, "accesses used to warm the cache before measuring")
		wsKB        = flag.Int("ws", 64, "hot working-set size in KiB")
		cold        = flag.Float64("cold", 0.02, "fraction of cold (streaming) accesses")
		stride      = flag.Float64("stride", 0.3, "fraction of strided accesses")
		zipf        = flag.Float64("zipf", 1.2, "Zipf exponent of hot-line reuse (>1)")
		metricsAddr = flag.String("metrics-addr", "", "serve live diagnostics (/metrics, /debug/pprof) on this address (e.g. :8090); empty disables")
	)
	flag.Parse()

	if *metricsAddr != "" {
		reg := telemetry.NewRegistry()
		telemetry.RegisterGoMetrics(reg)
		sim.SetTelemetry(reg)
		srv, err := telemetry.StartServer(*metricsAddr, telemetry.ServerOptions{Registry: reg})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "diagnostics on http://%s/ (metrics, debug/pprof)\n", srv.Addr())
	}

	spec := sim.DefaultTraceSpec()
	spec.WorkingSetBytes = uint64(*wsKB) << 10
	spec.ColdFraction = *cold
	spec.StrideFraction = *stride
	spec.ZipfS = *zipf
	gen := sim.NewTraceGen(spec, rand.New(rand.NewSource(*seed)))
	trace := gen.Generate(*accesses)

	for _, level := range []struct {
		name string
		geom sim.CacheGeometry
	}{
		{"L1D (32 KiB, 4-way)", sim.CacheGeometry{SizeBytes: 32 << 10, Ways: 4, LineBytes: 64}},
		{"L2 (256 KiB, 8-way)", sim.CacheGeometry{SizeBytes: 256 << 10, Ways: 8, LineBytes: 64}},
	} {
		pts, err := sim.CalibrateMissCurve(level.geom, trace, *warmup)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		m1, alpha, floor := sim.FitPowerLawMissCurve(pts)
		fmt.Printf("%s  (working set %d KiB)\n", level.name, *wsKB)
		fmt.Printf("  %-6s %s\n", "ways", "miss rate")
		for _, p := range pts {
			fmt.Printf("  %-6d %.4f\n", p.Ways, p.MissRate)
		}
		fmt.Printf("  power-law fit: miss(w) ≈ %.4f + (%.4f - %.4f)·w^(-%.2f)\n\n",
			floor, m1, floor, alpha)
	}
}
