// Command mimodoctor turns a control-loop flight recording into a
// ranked root-cause diagnosis: model drift vs sensor fault vs actuator
// saturation vs reference infeasibility (internal/health.Diagnose).
//
// A dump carries its replay identity (arch, workload, fault class,
// seed), so -replay re-runs the recorded scenario from scratch and
// verifies the fresh ring is byte-identical to the dump — proof the
// evidence is trustworthy before acting on the verdict.
//
// Usage:
//
//	mimodoctor [-json] [-replay] [-expect cause] <dump.frec|dump.jsonl>
//	mimodoctor -record CLASS -o FILE [-arch mimo|supervised|adaptive] [-seed N] [-epochs N] [-cap N]
//
// Examples:
//
//	mimodoctor run.frec
//	mimodoctor -replay -expect sensor-fault dumps/faults_sensor-freeze_mimo_001.frec
//	mimodoctor -record actuator-stuck-freq -o stuck.frec
//
// Exit status: 0 on success; 1 on a failed -replay or a missed
// -expect; 2 on usage errors.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"mimoctl/internal/experiments"
	"mimoctl/internal/flightrec"
	"mimoctl/internal/health"
)

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit the diagnosis as JSON instead of the text report")
		replay  = flag.Bool("replay", false, "re-run the recorded scenario from its metadata and verify the dump is byte-identical")
		expect  = flag.String("expect", "", "exit nonzero unless the top-ranked cause matches (healthy, sensor-fault, actuator-fault, model-drift, infeasible-reference)")
		record  = flag.String("record", "", "record a fresh scenario instead of reading a dump: a fault class name, \"none\", or \"infeasible-target\"")
		out     = flag.String("o", "", "output path for -record (.jsonl extension selects JSONL, anything else binary)")
		arch    = flag.String("arch", "mimo", "controller architecture for -record: "+strings.Join(experiments.RecordedArchs(), ", "))
		seed    = flag.Int64("seed", experiments.DefaultSeed, "simulation seed for -record")
		epochs  = flag.Int("epochs", 0, "epochs to drive for -record (0 = 2000)")
		ringCap = flag.Int("cap", 0, "ring capacity for -record (0 = epochs, i.e. keep everything)")
	)
	flag.Parse()

	if *record != "" {
		if *out == "" {
			fmt.Fprintln(os.Stderr, "-record requires -o <path>")
			os.Exit(2)
		}
		rec, err := experiments.RecordedRun(*arch, *record, *seed, *epochs, *ringCap)
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteFile(*out, "recorded"); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "recorded %d epochs of %s/%s -> %s\n", rec.Len(), *arch, *record, *out)
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mimodoctor [-json] [-replay] [-expect cause] <dump>")
		fmt.Fprintln(os.Stderr, "       mimodoctor -record CLASS -o FILE [-arch A] [-seed N] [-epochs N] [-cap N]")
		os.Exit(2)
	}
	path := flag.Arg(0)
	meta, recs, err := flightrec.ReadDumpFile(path)
	if err != nil {
		fatal(err)
	}

	if *replay {
		fresh, err := experiments.ReplayRecorded(meta)
		if err != nil {
			fatal(fmt.Errorf("replay: %w", err))
		}
		got, want := flightrec.EncodeRecords(fresh.Snapshot()), flightrec.EncodeRecords(recs)
		if !bytes.Equal(got, want) {
			fmt.Fprintf(os.Stderr, "REPLAY MISMATCH: re-running %s/%s seed=%d epochs=%d did not reproduce the dump (%d vs %d records)\n",
				meta.Arch, orUnknown(meta.FaultClass), meta.Seed, meta.Epochs, fresh.Len(), len(recs))
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "replay verified: %d records byte-identical\n", len(recs))
	}

	d := health.Diagnose(meta, recs)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Meta flightrec.Meta `json:"meta"`
			*health.Diagnosis
		}{meta, d}); err != nil {
			fatal(err)
		}
	} else {
		health.WriteReport(os.Stdout, meta, d)
	}

	if *expect != "" {
		if top := d.Top(); top.Cause != health.Cause(*expect) {
			fmt.Fprintf(os.Stderr, "EXPECT FAILED: top cause is %s, wanted %s\n", top.Cause, *expect)
			os.Exit(1)
		}
	}
}

func orUnknown(s string) string {
	if s == "" {
		return "unknown"
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
