// Command mimotrace runs one closed-loop experiment and emits a
// per-epoch trace (epoch, targets, measured and true outputs, knob
// settings) for plotting — the raw data behind Figures 6, 11, and 12.
//
// The trace flows through the telemetry layer's TraceRecorder: -format
// selects CSV (default) or JSONL, -every subsamples, and -metrics-addr
// additionally serves live diagnostics (/metrics, /healthz, /trace,
// /debug/pprof) while the run is in flight.
//
// With -flightrec the run also keeps a control-loop flight recorder
// attached: the last epochs of controller internals are dumped to the
// given path on SIGQUIT, on supervisor fallback, and at exit, and
// served live at /debug/flightrec when -metrics-addr is set.
//
// `mimotrace explain <dump>` renders a recorded dump's ranked
// root-cause diagnosis (the same report as cmd/mimodoctor).
//
// Examples:
//
//	mimotrace -workload namd -arch mimo -epochs 5000 > trace.csv
//	mimotrace -workload astar -arch heuristic -battery
//	mimotrace -workload milc -arch supervised -format jsonl -metrics-addr :8090
//	mimotrace -workload namd -arch supervised -flightrec run.frec > trace.csv
//	mimotrace explain run.frec
package main

import (
	"flag"
	"fmt"
	"os"
	"syscall"

	"mimoctl/internal/core"
	"mimoctl/internal/experiments"
	"mimoctl/internal/flightrec"
	"mimoctl/internal/health"
	"mimoctl/internal/sim"
	"mimoctl/internal/supervisor"
	"mimoctl/internal/telemetry"
	"mimoctl/internal/workloads"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "explain" {
		explainMain(os.Args[2:])
		return
	}
	var (
		workload    = flag.String("workload", "namd", "application to run (SPEC CPU2006 name)")
		arch        = flag.String("arch", "mimo", "controller: mimo, mimo3, heuristic, decoupled, baseline, supervised")
		epochs      = flag.Int("epochs", 5000, "number of 50 µs control epochs")
		ips         = flag.Float64("ips", core.DefaultIPSTarget, "IPS target (BIPS)")
		power       = flag.Float64("power", core.DefaultPowerTarget, "power target (W)")
		battery     = flag.Bool("battery", false, "drive targets from the battery/QoE scheduler (Fig. 12)")
		seed        = flag.Int64("seed", experiments.DefaultSeed, "simulation seed")
		every       = flag.Int("every", 1, "emit every Nth epoch (must be >= 1)")
		format      = flag.String("format", "csv", "trace format: csv or jsonl")
		metricsAddr = flag.String("metrics-addr", "", "serve live diagnostics on this address (e.g. :8090); empty disables")
		frPath      = flag.String("flightrec", "", "keep a flight recorder attached and dump it to this path (SIGQUIT, supervisor fallback, and exit); empty disables")
		frCap       = flag.Int("flightrec-cap", 4096, "flight recorder ring capacity (records)")
	)
	flag.Parse()

	if *every < 1 {
		fatal(fmt.Errorf("-every must be >= 1, got %d", *every))
	}
	var sink telemetry.Sink
	switch *format {
	case "csv":
		sink = telemetry.NewCSVSink(os.Stdout)
	case "jsonl":
		sink = telemetry.NewJSONLSink(os.Stdout)
	default:
		fatal(fmt.Errorf("unknown -format %q (want csv or jsonl)", *format))
	}
	rec, err := telemetry.NewTraceRecorder(telemetry.RecorderOptions{
		SampleEvery: *every,
		Sink:        sink,
	})
	if err != nil {
		fatal(err)
	}

	var frec *flightrec.Recorder
	if *frPath != "" {
		frec = flightrec.New(*frCap)
		frec.SetOnDump(func(reason string, r *flightrec.Recorder) {
			if err := r.WriteFile(*frPath, reason); err != nil {
				fmt.Fprintf(os.Stderr, "flightrec dump: %v\n", err)
				return
			}
			fmt.Fprintf(os.Stderr, "flightrec dump (%s) -> %s\n", reason, *frPath)
		})
		stop := flightrec.DumpOnSignal(frec, syscall.SIGQUIT, *frPath, func(err error) {
			fmt.Fprintf(os.Stderr, "flightrec signal dump: %v\n", err)
		})
		defer stop()
	}

	if *metricsAddr != "" {
		reg := telemetry.NewRegistry()
		telemetry.RegisterGoMetrics(reg)
		experiments.EnableTelemetry(reg) // before any processor is built
		srv, err := telemetry.StartServer(*metricsAddr, telemetry.ServerOptions{
			Registry: reg,
			Health:   supervisor.Healthz,
			Trace:    rec,
			Extra:    flightrecEndpoints(frec),
		})
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "diagnostics on http://%s/ (metrics, healthz, trace, debug/pprof)\n", srv.Addr())
	}

	w, err := workloads.ByName(*workload)
	if err != nil {
		fatal(err)
	}
	ctrl, err := buildController(*arch, *seed)
	if err != nil {
		fatal(err)
	}
	ctrl.SetTargets(*ips, *power)
	if frec != nil {
		rc, ok := ctrl.(flightrec.Recordable)
		if !ok {
			fatal(fmt.Errorf("-flightrec: architecture %q does not support flight recording", *arch))
		}
		frec.SetMeta(flightrec.Meta{
			Arch: *arch, Workload: *workload, Seed: *seed,
			TargetIPS: *ips, TargetPowerW: *power,
			FreqLevels: len(sim.FreqSettingsGHz), CacheLevels: len(sim.CacheSettings), ROBLevels: len(sim.ROBSettings),
		})
		rc.SetFlightRecorder(frec)
	}

	var sched *core.BatteryScheduler
	if *battery {
		sched, err = core.NewBatteryScheduler(core.BatteryScheduleConfig{
			InitialIPS: *ips, InitialPower: *power, TotalEnergyJ: 1.0,
		})
		if err != nil {
			fatal(err)
		}
	}

	proc, err := sim.NewProcessor(w, sim.DefaultProcessorOptions(), *seed)
	if err != nil {
		fatal(err)
	}
	sup, supervised := ctrl.(*supervisor.Supervised)

	tel := proc.Step()
	for k := 0; k < *epochs; k++ {
		if sched != nil {
			if i, p, changed := sched.Step(tel); changed {
				ctrl.SetTargets(i, p)
			}
		}
		cfg := ctrl.Step(tel)
		if err := proc.Apply(cfg); err != nil {
			if supervised {
				// The supervised runtime retries failed actuations and
				// falls back when they persist; report and continue.
				sup.ObserveApply(cfg, err)
			} else {
				fatal(err)
			}
		} else if supervised {
			sup.ObserveApply(cfg, nil)
		}
		tel = proc.Step()
		ti, tp := ctrl.Targets()
		ev := telemetry.EpochEvent{
			Epoch:       k,
			IPSTarget:   ti,
			PowerTarget: tp,
			IPS:         tel.IPS,
			PowerW:      tel.PowerW,
			TrueIPS:     tel.TrueIPS,
			TruePowerW:  tel.TruePowerW,
			FreqGHz:     cfg.FreqGHz(),
			L2Ways:      cfg.L2Ways(),
			ROBEntries:  cfg.ROBEntries(),
			TempC:       tel.TempC,
			PhaseID:     tel.PhaseID,
		}
		if ir, ok := ctrl.(supervisor.InnovationReporter); ok {
			if innov := ir.LastInnovation(); len(innov) >= 2 {
				ev.InnovIPS, ev.InnovPower = innov[0], innov[1]
			}
		}
		if supervised {
			ev.Mode = sup.Mode().String()
		}
		rec.Record(ev)
	}
	if frec != nil {
		frec.RequestDump("run-complete")
	}
	// A trace whose tail was silently dropped (full disk, closed pipe)
	// must not exit 0: Close surfaces the first sink error.
	if err := rec.Close(); err != nil {
		fatal(err)
	}
}

// flightrecEndpoints mounts /debug/flightrec when a recorder is live.
func flightrecEndpoints(r *flightrec.Recorder) []telemetry.Endpoint {
	if r == nil {
		return nil
	}
	return []telemetry.Endpoint{{
		Path:    "/debug/flightrec",
		Desc:    "flight recorder dump (binary; ?format=jsonl)",
		Handler: flightrec.Handler(r),
	}}
}

// explainMain implements `mimotrace explain <dump>`: load a flight
// recording and print its ranked root-cause diagnosis.
func explainMain(args []string) {
	fs := flag.NewFlagSet("mimotrace explain", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: mimotrace explain <dump.frec|dump.jsonl>")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}
	meta, recs, err := flightrec.ReadDumpFile(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	health.WriteReport(os.Stdout, meta, health.Diagnose(meta, recs))
}

func buildController(arch string, seed int64) (core.ArchController, error) {
	switch arch {
	case "mimo":
		ctrl, _, err := experiments.DesignedMIMO(false, seed)
		return ctrl, err
	case "mimo3":
		ctrl, _, err := experiments.DesignedMIMO(true, seed)
		return ctrl, err
	case "heuristic":
		return experiments.NewHeuristicTracker(false), nil
	case "decoupled":
		return experiments.DesignedDecoupled(seed)
	case "baseline":
		cfg, err := experiments.BaselineFor(2, false, seed)
		if err != nil {
			return nil, err
		}
		return core.NewStaticController(cfg)
	case "supervised":
		inner, _, err := experiments.DesignedMIMO(false, seed)
		if err != nil {
			return nil, err
		}
		return supervisor.New(inner, supervisor.Options{}), nil
	default:
		return nil, fmt.Errorf("unknown architecture %q", arch)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
