// Command mimotrace runs one closed-loop experiment and emits a
// per-epoch CSV trace (epoch, targets, measured and true outputs, knob
// settings) for plotting — the raw data behind Figures 6, 11, and 12.
//
// Examples:
//
//	mimotrace -workload namd -arch mimo -epochs 5000 > trace.csv
//	mimotrace -workload astar -arch heuristic -battery
//	mimotrace -workload milc -arch decoupled -ips 2.0 -power 1.6
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"mimoctl/internal/core"
	"mimoctl/internal/experiments"
	"mimoctl/internal/sim"
	"mimoctl/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "namd", "application to run (SPEC CPU2006 name)")
		arch     = flag.String("arch", "mimo", "controller: mimo, mimo3, heuristic, decoupled, baseline")
		epochs   = flag.Int("epochs", 5000, "number of 50 µs control epochs")
		ips      = flag.Float64("ips", core.DefaultIPSTarget, "IPS target (BIPS)")
		power    = flag.Float64("power", core.DefaultPowerTarget, "power target (W)")
		battery  = flag.Bool("battery", false, "drive targets from the battery/QoE scheduler (Fig. 12)")
		seed     = flag.Int64("seed", experiments.DefaultSeed, "simulation seed")
		every    = flag.Int("every", 1, "emit every Nth epoch")
	)
	flag.Parse()

	w, err := workloads.ByName(*workload)
	if err != nil {
		fatal(err)
	}
	ctrl, err := buildController(*arch, *seed)
	if err != nil {
		fatal(err)
	}
	ctrl.SetTargets(*ips, *power)

	var sched *core.BatteryScheduler
	if *battery {
		sched, err = core.NewBatteryScheduler(core.BatteryScheduleConfig{
			InitialIPS: *ips, InitialPower: *power, TotalEnergyJ: 1.0,
		})
		if err != nil {
			fatal(err)
		}
	}

	proc, err := sim.NewProcessor(w, sim.DefaultProcessorOptions(), *seed)
	if err != nil {
		fatal(err)
	}

	out := csv.NewWriter(os.Stdout)
	defer out.Flush()
	header := []string{"epoch", "ips_target", "power_target", "ips_meas", "power_meas",
		"ips_true", "power_true", "freq_ghz", "l2_ways", "rob", "temp_c", "phase"}
	if err := out.Write(header); err != nil {
		fatal(err)
	}

	tel := proc.Step()
	for k := 0; k < *epochs; k++ {
		if sched != nil {
			if i, p, changed := sched.Step(tel); changed {
				ctrl.SetTargets(i, p)
			}
		}
		cfg := ctrl.Step(tel)
		if err := proc.Apply(cfg); err != nil {
			fatal(err)
		}
		tel = proc.Step()
		if k%*every != 0 {
			continue
		}
		ti, tp := ctrl.Targets()
		rec := []string{
			strconv.Itoa(k),
			f(ti), f(tp), f(tel.IPS), f(tel.PowerW), f(tel.TrueIPS), f(tel.TruePowerW),
			f(cfg.FreqGHz()), strconv.Itoa(cfg.L2Ways()), strconv.Itoa(cfg.ROBEntries()),
			f(tel.TempC), strconv.Itoa(tel.PhaseID),
		}
		if err := out.Write(rec); err != nil {
			fatal(err)
		}
	}
}

func buildController(arch string, seed int64) (core.ArchController, error) {
	switch arch {
	case "mimo":
		ctrl, _, err := experiments.DesignedMIMO(false, seed)
		return ctrl, err
	case "mimo3":
		ctrl, _, err := experiments.DesignedMIMO(true, seed)
		return ctrl, err
	case "heuristic":
		return experiments.NewHeuristicTracker(false), nil
	case "decoupled":
		return experiments.DesignedDecoupled(seed)
	case "baseline":
		cfg, err := experiments.BaselineFor(2, false, seed)
		if err != nil {
			return nil, err
		}
		return core.NewStaticController(cfg)
	default:
		return nil, fmt.Errorf("unknown architecture %q", arch)
	}
}

func f(v float64) string { return strconv.FormatFloat(v, 'f', 5, 64) }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
