// Command mimoexp regenerates the paper's evaluation figures and tables
// on the simulated processor substrate.
//
// Usage:
//
//	mimoexp -exp fig6|fig7|fig8|fig9|fig10|fig11|fig12|edk|faults|all [flags]
//
// Each experiment prints the same rows/series the paper reports; see
// EXPERIMENTS.md for the paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"mimoctl/internal/experiments"
	"mimoctl/internal/obs"
	"mimoctl/internal/runner"
	"mimoctl/internal/supervisor"
	"mimoctl/internal/telemetry"
	"mimoctl/internal/tsdb"
)

func main() {
	var (
		exp         = flag.String("exp", "all", "experiment to run: fig6, fig7, fig8, fig9, fig10, fig11, fig12, edk, ablation, design, faults, all")
		seed        = flag.Int64("seed", experiments.DefaultSeed, "random seed for all stochastic behaviour")
		epochs      = flag.Int("epochs", 0, "override the experiment's epoch budget (0 = experiment default)")
		k           = flag.Int("k", 3, "metric exponent for -exp edk: 1 = E, 3 = E×D²")
		format      = flag.String("format", "text", "output format: text or csv")
		parallel    = flag.Int("parallel", runner.DefaultWorkers(), "experiment worker count: 0 = serial, N = pool of N workers (output is byte-identical either way)")
		metricsAddr = flag.String("metrics-addr", "", "serve live diagnostics (/metrics, /healthz, /debug/pprof) on this address (e.g. :8090); empty disables")
		frDir       = flag.String("flightrec-dir", "", "attach a flight recorder to every recordable run and dump each ring to this directory; empty disables")
		obsOn       = flag.Bool("obs", false, "attach the fleet observability plane: per-loop scoped metrics, control SLOs on /slo, live events on /events (watch with cmd/mimostat)")
		eventsPath  = flag.String("events", "", "write one JSONL event per engaged epoch per loop to this file (implies -obs)")
		historyOn   = flag.Bool("history", false, "record per-loop telemetry history into the embedded time-series store, served on /history (implies -obs; watch with cmd/mimostat)")
		basePath    = flag.String("baseline", "", "compare live history against this committed baseline snapshot and surface drift on /healthz (implies -history)")
		baseOutPath = flag.String("baseline-out", "", "capture a baseline snapshot of this run's history to this path on exit (implies -history)")
		batchOn     = flag.Bool("batch", false, "step MIMO and supervised loops on the batched structure-of-arrays backend (bit-identical output; loops with a flight recorder or adapter attached stay scalar)")
	)
	flag.Parse()
	outputCSV = *format == "csv"
	experiments.SetParallelism(*parallel)
	experiments.SetBatchStepping(*batchOn)
	if *frDir != "" {
		if err := os.MkdirAll(*frDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		experiments.SetFlightRecording(experiments.FlightRecConfig{Enabled: true, Dir: *frDir})
	}

	var reg *telemetry.Registry
	if *metricsAddr != "" {
		reg = telemetry.NewRegistry()
		telemetry.RegisterGoMetrics(reg)
		// Before any experiment runs: sim processors bind at construction.
		experiments.EnableTelemetry(reg)
	}

	wantHistory := *historyOn || *basePath != "" || *baseOutPath != ""
	var fleet *obs.Fleet
	var hist *tsdb.DB
	if *obsOn || *eventsPath != "" || wantHistory {
		var sinks []obs.Sink
		if *eventsPath != "" {
			f, err := os.Create(*eventsPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			// The name resolver closes over fleet, assigned below.
			sinks = append(sinks, obs.NewJSONLSink(f, func(id uint32) string { return fleet.LoopName(id) }))
		}
		var rec *tsdb.Recorder
		if wantHistory {
			hist = tsdb.New(tsdb.Options{})
			rec = tsdb.NewRecorder(hist, func(id uint32) string { return fleet.LoopName(id) })
			sinks = append(sinks, rec)
			if *basePath != "" {
				base, err := tsdb.ReadBaseline(*basePath)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				det := tsdb.NewDetector(hist, base, 0, 0, tsdb.DriftConfig{})
				rec.SetDetector(det)
				supervisor.RegisterHealthzAnnotation("baseline-drift", det.Annotation)
			}
			// Registered before the bus-closing defer below so it runs after
			// the bus has drained into the recorder.
			defer func() {
				rec.Sync()
				if *baseOutPath == "" {
					return
				}
				from, to, ok := hist.EpochRange()
				if !ok {
					fmt.Fprintln(os.Stderr, "baseline-out: no history recorded, nothing to capture")
					return
				}
				b := tsdb.CaptureBaseline(hist, tsdb.BaselineSignals, from, to)
				if err := tsdb.WriteBaseline(*baseOutPath, b); err != nil {
					fmt.Fprintf(os.Stderr, "baseline-out: %v\n", err)
					return
				}
				fmt.Fprintf(os.Stderr, "baseline captured to %s (epochs %d..%d)\n", *baseOutPath, from, to)
			}()
		}
		bus := obs.NewBus(1<<14, sinks...)
		defer func() {
			if err := bus.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "event sink: %v\n", err)
			}
		}()
		fleet = obs.NewFleet(obs.Options{Registry: reg, Bus: bus, PublishVerdict: true})
		experiments.SetObservability(fleet)
	}

	if *metricsAddr != "" {
		opts := telemetry.ServerOptions{
			Registry: reg,
			Health:   supervisor.Healthz,
		}
		if fleet != nil {
			opts.Extra = fleet.Endpoints()
		}
		if hist != nil {
			opts.Extra = append(opts.Extra, hist.Endpoint())
		}
		srv, err := telemetry.StartServer(*metricsAddr, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "diagnostics on http://%s/ (metrics, healthz, debug/pprof)\n", srv.Addr())
	}

	runners := map[string]func() error{
		"fig6":     func() error { return run1(experiments.Fig6(*seed, *epochs)) },
		"fig7":     func() error { return run1(experiments.Fig7(*seed, 8)) },
		"fig8":     func() error { return run1(experiments.Fig8(*seed, *epochs)) },
		"fig9":     func() error { return run1(experiments.Fig9(*seed, *epochs)) },
		"fig10":    func() error { return run1(experiments.Fig10(*seed, *epochs)) },
		"fig11":    func() error { return run1(experiments.Fig11(*seed, *epochs)) },
		"fig12":    func() error { return run1(experiments.Fig12(*seed, *epochs, 0)) },
		"edk":      func() error { return run1(experiments.TableEDK(*seed, *epochs, *k)) },
		"ablation": func() error { return run1(experiments.Ablation(*seed, *epochs)) },
		"design":   func() error { return printDesign(*seed) },
		"faults":   func() error { return run1(experiments.FaultSweep(*seed, *epochs)) },
	}
	order := []string{"design", "fig6", "fig7", "fig8", "fig11", "fig12", "fig9", "fig10", "edk", "ablation", "faults"}

	names := []string{*exp}
	if *exp == "all" {
		names = order
	}
	for _, name := range names {
		runner, ok := runners[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; have %s\n", name, strings.Join(order, ", "))
			os.Exit(2)
		}
		t0 := time.Now()
		if err := runner(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		// Timing goes to stderr: stdout carries only the experiment's
		// rows, which are byte-identical at any -parallel value.
		fmt.Fprintf(os.Stderr, "[%s completed in %v]\n", name, time.Since(t0).Round(time.Millisecond))
		fmt.Println()
	}
}

// textResult is any experiment result that can render itself.
type textResult interface{ WriteText(w io.Writer) }

// run1 adapts the (result, error) returns of the experiment functions,
// honoring the -format flag (every result also implements
// experiments.Tabular for CSV).
func run1(res textResult, err error) error {
	if err != nil {
		return err
	}
	if outputCSV {
		if tab, ok := res.(experiments.Tabular); ok {
			return experiments.WriteCSV(os.Stdout, tab)
		}
	}
	res.WriteText(os.Stdout)
	return nil
}

// outputCSV is set from the -format flag before any experiment runs.
var outputCSV bool

// printDesign reports the Fig. 3 design-flow diagnostics for the
// standard 2- and 3-input controllers.
func printDesign(seed int64) error {
	for _, three := range []bool{false, true} {
		ctrl, rep, err := experiments.DesignedMIMO(three, seed)
		if err != nil {
			return err
		}
		label := "2-input (frequency, cache)"
		if three {
			label = "3-input (frequency, cache, ROB)"
		}
		fmt.Printf("MIMO design, %s:\n", label)
		fmt.Printf("  model dimension:        %d\n", rep.Model.SS.Order())
		fmt.Printf("  training fit (IPS, P):  %.1f%%, %.1f%%\n", rep.TrainingFit[0], rep.TrainingFit[1])
		if len(rep.ValidationErr) == 2 {
			fmt.Printf("  validation err (IPS,P): %.1f%%, %.1f%%  (paper: 14%%, 10%%)\n",
				100*rep.ValidationErr[0], 100*rep.ValidationErr[1])
		}
		fmt.Printf("  guardbands (IPS, P):    %.0f%%, %.0f%%\n", 100*rep.Guardbands[0], 100*rep.Guardbands[1])
		fmt.Printf("  robust stability:       nominal=%v robust=%v peak=%.3f margin=%.2f (after %d redesigns)\n",
			rep.RSA.NominallyStable, rep.RSA.RobustlyStable, rep.RSA.PeakGain, rep.RSA.Margin, rep.RSAIterations)
		fmt.Printf("  final input weights:    %v\n", rep.FinalInputWeights)
		ips, p := ctrl.Targets()
		fmt.Printf("  default targets:        %.1f BIPS, %.1f W\n\n", ips, p)
	}
	return nil
}
