package main

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mimoctl/internal/obs"
	"mimoctl/internal/tsdb"
)

func TestSparkline(t *testing.T) {
	if got := sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}); got != "▁▂▃▄▅▆▇█" {
		t.Fatalf("ramp sparkline = %q", got)
	}
	// Flat series renders mid-level, not a divide-by-zero artifact.
	if got := sparkline([]float64{5, 5, 5}); got != "▅▅▅" {
		t.Fatalf("flat sparkline = %q", got)
	}
	// Non-finite samples render as gaps without poisoning the scale.
	got := sparkline([]float64{0, math.NaN(), 10, math.Inf(1), 0})
	if got != "▁ █ ▁" {
		t.Fatalf("gappy sparkline = %q", got)
	}
	if got := sparkline([]float64{math.NaN(), math.NaN()}); got != "  " {
		t.Fatalf("all-NaN sparkline = %q", got)
	}
	if got := sparkline(nil); got != "" {
		t.Fatalf("empty sparkline = %q", got)
	}
}

func TestTail(t *testing.T) {
	v := []float64{1, 2, 3, 4}
	if got := tail(v, 2); len(got) != 2 || got[0] != 3 {
		t.Fatalf("tail = %v", got)
	}
	if got := tail(v, 10); len(got) != 4 {
		t.Fatalf("tail = %v", got)
	}
}

// recordedRun builds a tsdb store the way a live process would: events
// through a Recorder, then mounts /history exactly as the diagnostics
// server does.
func recordedRun(t *testing.T) *httptest.Server {
	t.Helper()
	db := tsdb.New(tsdb.Options{})
	rec := tsdb.NewRecorder(db, func(id uint32) string {
		return []string{"core0", "core1"}[id]
	})
	var batch []obs.Event
	for e := uint64(1); e <= 300; e++ {
		for id := uint32(0); id < 2; id++ {
			// core1 tracks worse than core0, and both drift over time.
			ips := 2.0 - 0.001*float64(e)*float64(id+1)
			batch = append(batch, obs.Event{
				LoopID: id, Epoch: e,
				IPS: ips, IPSTarget: 2.0, PowerW: 10, PowerTarget: 10,
				InnovNorm: 0.1, Guardband: 0.3 + 0.001*float64(e),
				ReqFreq: 3, ReqCache: 4, ReqROB: 5,
			})
		}
	}
	if err := rec.WriteEvents(batch); err != nil {
		t.Fatal(err)
	}
	rec.Sync()
	mux := http.NewServeMux()
	mux.Handle("/history", db.Handler())
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestRenderHistoryFleetSparkline(t *testing.T) {
	srv := recordedRun(t)
	var sb strings.Builder
	renderHistory(&sb, srv.Client(), srv.URL, "", 512)
	out := sb.String()
	if !strings.Contains(out, "track_err (fleet mean") {
		t.Fatalf("fleet sparkline panel missing:\n%s", out)
	}
	if !strings.ContainsAny(out, "▁▂▃▄▅▆▇█") {
		t.Fatalf("no sparkline glyphs in fleet panel:\n%s", out)
	}
}

func TestRenderHistoryLoopDrillDown(t *testing.T) {
	srv := recordedRun(t)
	var sb strings.Builder
	renderHistory(&sb, srv.Client(), srv.URL, "core1", 512)
	out := sb.String()
	for _, sig := range []string{"ips", "power_w", "track_err", "guardband"} {
		if !strings.Contains(out, sig) {
			t.Fatalf("drill-down missing %s panel:\n%s", sig, out)
		}
	}
	if !strings.ContainsAny(out, "▁▂▃▄▅▆▇█") {
		t.Fatalf("no sparkline glyphs in drill-down:\n%s", out)
	}
}

func TestRenderHistoryDegradesWithoutEndpoint(t *testing.T) {
	// A process without the history store has no /history route; the
	// panels must silently vanish instead of erroring.
	srv := httptest.NewServer(http.NotFoundHandler())
	defer srv.Close()
	var sb strings.Builder
	renderHistory(&sb, srv.Client(), srv.URL, "", 512)
	renderHistory(&sb, srv.Client(), srv.URL, "some-loop", 512)
	if sb.Len() != 0 {
		t.Fatalf("history panels rendered without an endpoint: %q", sb.String())
	}
}

func TestRenderJSONMirrorsReport(t *testing.T) {
	rep := &obs.FleetReport{
		Loops: 2, Level: "warn", Detail: "1/2 loops burning error budget",
		BurningLoops: 1, EventsPublished: 1234, EventsDropped: 5,
		Rows: []obs.LoopStatus{{Loop: "core0", Epochs: 100}},
	}
	var sb strings.Builder
	renderJSON(&sb, rep)
	var back struct {
		PolledAt time.Time `json:"polled_at"`
		obs.FleetReport
	}
	if err := json.Unmarshal([]byte(sb.String()), &back); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, sb.String())
	}
	if back.Level != "warn" || back.Loops != 2 || back.EventsPublished != 1234 {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
	if len(back.Rows) != 1 || back.Rows[0].Loop != "core0" {
		t.Fatalf("rows lost: %+v", back.Rows)
	}
	if back.PolledAt.IsZero() {
		t.Fatal("polled_at not stamped")
	}
}
