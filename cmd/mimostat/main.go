// Command mimostat is the top-like fleet view of the control-SLO
// engine: it polls a running mimoexp/mimotrace diagnostics endpoint
// (started with -metrics-addr and -obs) and renders the fleet report —
// loops sorted by worst burn rate, hottest first — refreshing in place.
// When the observed process records telemetry history (-history), the
// fleet view carries a sparkline of the fleet-wide tracking error and
// the per-loop drill-down charts each recorded signal.
//
// Usage:
//
//	mimostat [-addr host:port] [-interval 2s] [-n 20]
//	mimostat -once                 # one snapshot, no screen control
//	mimostat -json                 # one machine-readable snapshot
//	mimostat -loop faults/x/MIMO   # drill into one loop's SLO windows
//	mimostat -loop x -span 2048    # widen the history window
//
// Exit status in -once and -json mode mirrors the fleet verdict: 0 ok,
// 1 warn, 2 fail — usable straight from a shell gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"mimoctl/internal/obs"
	"mimoctl/internal/tsdb"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:8090", "diagnostics address of the observed process")
		interval = flag.Duration("interval", 2*time.Second, "refresh period")
		once     = flag.Bool("once", false, "print one snapshot and exit (status 0 ok, 1 warn, 2 fail)")
		jsonOut  = flag.Bool("json", false, "print one machine-readable JSON snapshot and exit (same status codes as -once)")
		loop     = flag.String("loop", "", "drill into one loop: show every SLO window instead of the fleet table")
		topN     = flag.Int("n", 0, "show only the hottest N loops (0 = all)")
		span     = flag.Uint64("span", 512, "history sparkline window in epochs")
	)
	flag.Parse()

	base := "http://" + *addr
	url := base + "/slo"
	if *loop != "" {
		url += "?loop=" + *loop
	}
	client := &http.Client{Timeout: 10 * time.Second}

	for {
		rep, err := fetch(client, url)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mimostat: %v\n", err)
			if *once || *jsonOut {
				os.Exit(2)
			}
			time.Sleep(*interval)
			continue
		}
		if *jsonOut {
			renderJSON(os.Stdout, rep)
			exitVerdict(rep.Level)
		}
		if !*once {
			fmt.Print("\x1b[2J\x1b[H") // clear, home
		}
		render(os.Stdout, rep, *loop, *topN)
		renderHistory(os.Stdout, client, base, *loop, *span)
		if *once {
			exitVerdict(rep.Level)
		}
		time.Sleep(*interval)
	}
}

// exitVerdict maps the fleet verdict to the documented exit status.
func exitVerdict(level string) {
	switch level {
	case "fail":
		os.Exit(2)
	case "warn":
		os.Exit(1)
	}
	os.Exit(0)
}

func fetch(client *http.Client, url string) (*obs.FleetReport, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	var rep obs.FleetReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return nil, fmt.Errorf("decoding %s: %w", url, err)
	}
	return &rep, nil
}

// renderJSON emits the one-shot machine-readable report: the fleet
// report as served by /slo, wrapped with the poll timestamp so scripted
// consumers can stamp their samples.
func renderJSON(w io.Writer, rep *obs.FleetReport) {
	out := struct {
		PolledAt time.Time `json:"polled_at"`
		*obs.FleetReport
	}{time.Now().UTC(), rep}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "mimostat: encoding report: %v\n", err)
		os.Exit(2)
	}
}

func render(w io.Writer, rep *obs.FleetReport, loop string, topN int) {
	badge := strings.ToUpper(rep.Level)
	fmt.Fprintf(w, "mimostat  %s  [%s] %s\n", time.Now().Format("15:04:05"), badge, rep.Detail)
	fmt.Fprintf(w, "loops %d  alerting %d  burning %d  events %d (dropped %d)\n\n",
		rep.Loops, rep.AlertingLoops, rep.BurningLoops, rep.EventsPublished, rep.EventsDropped)

	if loop != "" {
		renderLoop(w, rep, loop)
		return
	}
	rows := rep.Rows
	if topN > 0 && len(rows) > topN {
		rows = rows[:topN]
	}
	fmt.Fprintf(w, "%-40s %10s %9s %8s %-14s %9s %10s %8s\n",
		"LOOP", "EPOCHS", "MODE", "BURN", "WORST-SLO", "TRACK-RMS", "FALLBACK", "VIOL")
	for _, r := range rows {
		alert := " "
		if r.Alerting {
			alert = "!"
		}
		fmt.Fprintf(w, "%-40s %10d %9s %7.2f%s %-14s %9.3f %10d %7.1fs\n",
			clip(r.Loop, 40), r.Epochs, r.Mode, r.WorstBurn, alert, r.WorstSLO,
			float64(r.TrackingRMS), r.FallbackEpochs, float64(r.ViolationSeconds))
	}
	if topN > 0 && len(rep.Rows) > topN {
		fmt.Fprintf(w, "... %d more loops (raise -n)\n", len(rep.Rows)-topN)
	}
}

func renderLoop(w io.Writer, rep *obs.FleetReport, loop string) {
	for _, r := range rep.Rows {
		if r.Loop != loop {
			continue
		}
		fmt.Fprintf(w, "loop %s: %d epochs, mode %s, tracking RMS %.3f, %d fallback epochs, %.1fs over power budget\n\n",
			r.Loop, r.Epochs, r.Mode, float64(r.TrackingRMS), r.FallbackEpochs, float64(r.ViolationSeconds))
		slos := append([]obs.SLOStatus(nil), r.SLOs...)
		sort.Slice(slos, func(i, j int) bool { return slos[i].WorstBurn > slos[j].WorstBurn })
		for _, s := range slos {
			alert := ""
			if s.Alerting {
				alert = "  << ALERTING"
			}
			fmt.Fprintf(w, "  %-14s (%s, objective %.2f%%): %d/%d bad epochs%s\n",
				s.Name, s.Signal, 100*s.Objective, s.BadEpochs, s.TotalEpochs, alert)
			for _, win := range s.Windows {
				mark := " "
				if win.Burning {
					mark = "*"
				}
				fmt.Fprintf(w, "    %s window %6d epochs: burn %6.2f / max %.2f\n",
					mark, win.Epochs, win.Burn, win.MaxBurn)
			}
		}
		return
	}
	fmt.Fprintf(w, "loop %q not found (%d loops registered)\n", loop, rep.Loops)
}

// historySignals are the per-loop drill-down charts, in render order.
var historySignals = []string{"ips", "power_w", "track_err", "guardband"}

// renderHistory appends sparkline panels from the /history endpoint:
// the fleet-wide tracking-error trend on the fleet view, one chart per
// recorded signal on the loop drill-down. A process without the
// history store simply has no /history route, so any fetch failure
// degrades to omitting the panel — mimostat keeps working against
// older or history-off processes.
func renderHistory(w io.Writer, client *http.Client, base, loop string, span uint64) {
	if loop == "" {
		fh, err := fetchFleetHistory(client, base+"/history?signal=track_err&res=auto")
		if err != nil || len(fh.Points) == 0 {
			return
		}
		vals := make([]float64, len(fh.Points))
		for i, p := range fh.Points {
			vals[i] = float64(p.Mean)
		}
		vals = tail(vals, sparkWidth)
		fmt.Fprintf(w, "\ntrack_err (fleet mean, %s/bucket)  %s  last %.4f\n",
			fh.Resolution, sparkline(vals), vals[len(vals)-1])
		return
	}
	wrote := false
	for _, sig := range historySignals {
		url := fmt.Sprintf("%s/history?loop=%s&signal=%s&res=auto", base, loop, sig)
		h, err := fetchLoopHistory(client, url)
		if err != nil || len(h.Points) == 0 {
			continue
		}
		pts := h.Points
		if span > 0 {
			last := pts[len(pts)-1].Epoch
			from := uint64(0)
			if last > span {
				from = last - span
			}
			for len(pts) > 0 && pts[0].Epoch < from {
				pts = pts[1:]
			}
		}
		vals := make([]float64, len(pts))
		for i, p := range pts {
			vals[i] = float64(p.Mean)
		}
		vals = tail(vals, sparkWidth)
		if !wrote {
			fmt.Fprintf(w, "\nhistory (res %s):\n", h.Resolution)
			wrote = true
		}
		fmt.Fprintf(w, "  %-10s %s  last %.4f\n", sig, sparkline(vals), vals[len(vals)-1])
	}
}

func fetchLoopHistory(client *http.Client, url string) (*tsdb.HistoryResponse, error) {
	var h tsdb.HistoryResponse
	if err := fetchJSON(client, url, &h); err != nil {
		return nil, err
	}
	return &h, nil
}

func fetchFleetHistory(client *http.Client, url string) (*tsdb.FleetHistoryResponse, error) {
	var h tsdb.FleetHistoryResponse
	if err := fetchJSON(client, url, &h); err != nil {
		return nil, err
	}
	return &h, nil
}

func fetchJSON(client *http.Client, url string, into any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

// sparkWidth bounds sparkline panels to a terminal-friendly width.
const sparkWidth = 64

// sparkRunes are the eight block-element levels of a sparkline cell.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline renders vals as unicode block elements scaled to the
// window's own min/max (a flat series renders mid-level). Non-finite
// samples render as spaces.
func sparkline(vals []float64) string {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo > hi {
		return strings.Repeat(" ", len(vals)) // nothing finite
	}
	var sb strings.Builder
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			sb.WriteByte(' ')
			continue
		}
		idx := len(sparkRunes) / 2
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		sb.WriteRune(sparkRunes[idx])
	}
	return sb.String()
}

// tail keeps the last n values.
func tail(vals []float64, n int) []float64 {
	if len(vals) > n {
		return vals[len(vals)-n:]
	}
	return vals
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
