// Command mimostat is the top-like fleet view of the control-SLO
// engine: it polls a running mimoexp/mimotrace diagnostics endpoint
// (started with -metrics-addr and -obs) and renders the fleet report —
// loops sorted by worst burn rate, hottest first — refreshing in place.
//
// Usage:
//
//	mimostat [-addr host:port] [-interval 2s] [-n 20]
//	mimostat -once                 # one snapshot, no screen control
//	mimostat -loop faults/x/MIMO   # drill into one loop's SLO windows
//
// Exit status in -once mode mirrors the fleet verdict: 0 ok, 1 warn,
// 2 fail — usable straight from a shell gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"mimoctl/internal/obs"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:8090", "diagnostics address of the observed process")
		interval = flag.Duration("interval", 2*time.Second, "refresh period")
		once     = flag.Bool("once", false, "print one snapshot and exit (status 0 ok, 1 warn, 2 fail)")
		loop     = flag.String("loop", "", "drill into one loop: show every SLO window instead of the fleet table")
		topN     = flag.Int("n", 0, "show only the hottest N loops (0 = all)")
	)
	flag.Parse()

	url := "http://" + *addr + "/slo"
	if *loop != "" {
		url += "?loop=" + *loop
	}
	client := &http.Client{Timeout: 10 * time.Second}

	for {
		rep, err := fetch(client, url)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mimostat: %v\n", err)
			if *once {
				os.Exit(2)
			}
			time.Sleep(*interval)
			continue
		}
		if !*once {
			fmt.Print("\x1b[2J\x1b[H") // clear, home
		}
		render(os.Stdout, rep, *loop, *topN)
		if *once {
			switch rep.Level {
			case "fail":
				os.Exit(2)
			case "warn":
				os.Exit(1)
			}
			return
		}
		time.Sleep(*interval)
	}
}

func fetch(client *http.Client, url string) (*obs.FleetReport, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	var rep obs.FleetReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return nil, fmt.Errorf("decoding %s: %w", url, err)
	}
	return &rep, nil
}

func render(w *os.File, rep *obs.FleetReport, loop string, topN int) {
	badge := strings.ToUpper(rep.Level)
	fmt.Fprintf(w, "mimostat  %s  [%s] %s\n", time.Now().Format("15:04:05"), badge, rep.Detail)
	fmt.Fprintf(w, "loops %d  alerting %d  burning %d  events %d (dropped %d)\n\n",
		rep.Loops, rep.AlertingLoops, rep.BurningLoops, rep.EventsPublished, rep.EventsDropped)

	if loop != "" {
		renderLoop(w, rep, loop)
		return
	}
	rows := rep.Rows
	if topN > 0 && len(rows) > topN {
		rows = rows[:topN]
	}
	fmt.Fprintf(w, "%-40s %10s %9s %8s %-14s %9s %10s %8s\n",
		"LOOP", "EPOCHS", "MODE", "BURN", "WORST-SLO", "TRACK-RMS", "FALLBACK", "VIOL")
	for _, r := range rows {
		alert := " "
		if r.Alerting {
			alert = "!"
		}
		fmt.Fprintf(w, "%-40s %10d %9s %7.2f%s %-14s %9.3f %10d %7.1fs\n",
			clip(r.Loop, 40), r.Epochs, r.Mode, r.WorstBurn, alert, r.WorstSLO,
			float64(r.TrackingRMS), r.FallbackEpochs, float64(r.ViolationSeconds))
	}
	if topN > 0 && len(rep.Rows) > topN {
		fmt.Fprintf(w, "... %d more loops (raise -n)\n", len(rep.Rows)-topN)
	}
}

func renderLoop(w *os.File, rep *obs.FleetReport, loop string) {
	for _, r := range rep.Rows {
		if r.Loop != loop {
			continue
		}
		fmt.Fprintf(w, "loop %s: %d epochs, mode %s, tracking RMS %.3f, %d fallback epochs, %.1fs over power budget\n\n",
			r.Loop, r.Epochs, r.Mode, float64(r.TrackingRMS), r.FallbackEpochs, float64(r.ViolationSeconds))
		slos := append([]obs.SLOStatus(nil), r.SLOs...)
		sort.Slice(slos, func(i, j int) bool { return slos[i].WorstBurn > slos[j].WorstBurn })
		for _, s := range slos {
			alert := ""
			if s.Alerting {
				alert = "  << ALERTING"
			}
			fmt.Fprintf(w, "  %-14s (%s, objective %.2f%%): %d/%d bad epochs%s\n",
				s.Name, s.Signal, 100*s.Objective, s.BadEpochs, s.TotalEpochs, alert)
			for _, win := range s.Windows {
				mark := " "
				if win.Burning {
					mark = "*"
				}
				fmt.Fprintf(w, "    %s window %6d epochs: burn %6.2f / max %.2f\n",
					mark, win.Epochs, win.Burn, win.MaxBurn)
			}
		}
		return
	}
	fmt.Fprintf(w, "loop %q not found (%d loops registered)\n", loop, rep.Loops)
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
