// benchcmp compares two benchmark captures produced by scripts/bench.sh
// (`go test -json` streams) and prints a benchstat-style delta table:
//
//	benchcmp [-gate pattern] [-max-regress pct]
//	         [-speedup base/contender] [-speedup-unit unit] [-min-speedup x]
//	         old.json new.json
//
// It exits non-zero when any benchmark matching -gate regressed its
// allocs/op by more than -max-regress percent (a zero-allocs baseline
// gates absolutely: any new allocation fails) — the CI guard that keeps
// the steady-state loop allocation-free. Benchmarks present in only one
// file are listed but never gate.
//
// -speedup names a baseline and a contender benchmark ("BenchmarkA/
// BenchmarkB"); the run then also fails unless, within the NEW capture,
// baseline's -speedup-unit metric divided by contender's is at least
// -min-speedup. This is the throughput gate for the batched fleet
// backend (make bench-batch): the scalar fleet's ns/lanestep over the
// batch engine's must stay >= 5x.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// result holds one benchmark line's metrics by unit (ns/op, B/op,
// allocs/op, ...).
type result struct {
	name    string
	metrics map[string]float64
}

// event is the subset of test2json's schema we need.
type event struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// parseFile reads a go test -json stream and extracts benchmark
// results. Benchmark lines are split across multiple Output events (the
// name flushes before the iteration count), so output is reassembled
// per package before line parsing.
func parseFile(path string) (map[string]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	perPkg := map[string]*strings.Builder{}
	var pkgs []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			// bench.sh streams may have a trailing human-readable echo;
			// ignore anything that isn't a JSON event.
			continue
		}
		if ev.Action != "output" || ev.Output == "" {
			continue
		}
		b, ok := perPkg[ev.Package]
		if !ok {
			b = &strings.Builder{}
			perPkg[ev.Package] = b
			pkgs = append(pkgs, ev.Package)
		}
		b.WriteString(ev.Output)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := map[string]result{}
	for _, pkg := range pkgs {
		for _, line := range strings.Split(perPkg[pkg].String(), "\n") {
			if r, ok := parseBenchLine(line); ok {
				out[r.name] = r
			}
		}
	}
	return out, nil
}

// parseBenchLine parses "BenchmarkX/sub-8  \t 10 \t 123 ns/op \t 4 B/op ...".
func parseBenchLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
		return result{}, false // second field must be the iteration count
	}
	r := result{name: fields[0], metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		r.metrics[fields[i+1]] = v
	}
	if len(r.metrics) == 0 {
		return result{}, false
	}
	return r, true
}

func delta(old, new float64) string {
	if old == 0 {
		if new == 0 {
			return "0.00%"
		}
		return "+inf%"
	}
	return fmt.Sprintf("%+.2f%%", 100*(new-old)/old)
}

func human(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.3gG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.3gk", v/1e3)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

func main() {
	gate := flag.String("gate", "^BenchmarkExpAll", "regexp of benchmarks whose allocs/op regression fails the run")
	maxRegress := flag.Float64("max-regress", 20, "allowed allocs/op regression percent before exiting non-zero")
	speedup := flag.String("speedup", "", "baseline/contender benchmark pair whose metric ratio in the new capture must meet -min-speedup")
	speedupUnit := flag.String("speedup-unit", "ns/op", "metric unit the -speedup ratio is computed from")
	minSpeedup := flag.Float64("min-speedup", 0, "required baseline/contender ratio (0 disables the speedup gate)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp [-gate re] [-max-regress pct] old.json new.json")
		os.Exit(2)
	}
	gateRe, err := regexp.Compile(*gate)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp: bad -gate:", err)
		os.Exit(2)
	}
	oldRes, err := parseFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	newRes, err := parseFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	names := map[string]bool{}
	for n := range oldRes {
		names[n] = true
	}
	for n := range newRes {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	units := []string{"ns/op", "B/op", "allocs/op"}
	w := bufio.NewWriter(os.Stdout)
	fmt.Fprintf(w, "%-44s %-9s %12s %12s %9s\n", "benchmark", "unit", "old", "new", "delta")
	failed := false
	for _, n := range sorted {
		o, haveOld := oldRes[n]
		nw, haveNew := newRes[n]
		if !haveOld || !haveNew {
			fmt.Fprintf(w, "%-44s %-9s (only in %s file)\n", n, "-", map[bool]string{true: "old", false: "new"}[haveOld])
			continue
		}
		for _, u := range units {
			ov, okO := o.metrics[u]
			nv, okN := nw.metrics[u]
			if !okO || !okN {
				continue
			}
			mark := ""
			if u == "allocs/op" && gateRe.MatchString(n) {
				switch {
				case ov > 0 && 100*(nv-ov)/ov > *maxRegress:
					mark = "  << FAIL (allocs/op regression > " + strconv.FormatFloat(*maxRegress, 'g', -1, 64) + "%)"
					failed = true
				case ov == 0 && nv > 0:
					mark = "  << FAIL (allocation-free baseline now allocates)"
					failed = true
				}
			}
			fmt.Fprintf(w, "%-44s %-9s %12s %12s %9s%s\n", n, u, human(ov), human(nv), delta(ov, nv), mark)
		}
	}
	w.Flush()
	if *speedup != "" && *minSpeedup > 0 {
		if !checkSpeedup(newRes, *speedup, *speedupUnit, *minSpeedup) {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// checkSpeedup evaluates the throughput gate on the fresh capture:
// metric(baseline)/metric(contender) must be at least min.
func checkSpeedup(res map[string]result, pair, unit string, min float64) bool {
	names := strings.SplitN(pair, "/", 2)
	if len(names) != 2 {
		fmt.Fprintf(os.Stderr, "benchcmp: bad -speedup %q, want baseline/contender\n", pair)
		return false
	}
	base, okB := res[names[0]]
	cont, okC := res[names[1]]
	if !okB || !okC {
		fmt.Fprintf(os.Stderr, "benchcmp: -speedup benchmarks missing from new capture (%s: %v, %s: %v)\n",
			names[0], okB, names[1], okC)
		return false
	}
	bv, okB := base.metrics[unit]
	cv, okC := cont.metrics[unit]
	if !okB || !okC || cv == 0 {
		fmt.Fprintf(os.Stderr, "benchcmp: -speedup unit %q unavailable or zero\n", unit)
		return false
	}
	ratio := bv / cv
	status := "ok"
	pass := ratio >= min
	if !pass {
		status = "FAIL"
	}
	fmt.Printf("speedup %s vs %s (%s): %.2fx (>= %gx required)  %s\n",
		names[0], names[1], unit, ratio, min, status)
	return pass
}
