package mimoctl_test

// One benchmark per paper table/figure (regenerating its rows and
// reporting the headline values as benchmark metrics), plus ablation
// benches for the design choices called out in DESIGN.md and
// micro-benchmarks of the substrate hot paths.
//
// Run with: go test -bench=. -benchmem
//
// The Fig*/Table* benchmarks report paper-comparable quantities via
// b.ReportMetric (e.g. IPSerr%, EDreduction%); the absolute ns/op of
// those benches is the cost of regenerating the experiment, not a claim
// about controller overhead — see BenchmarkControllerStep for that.

import (
	"math/rand"
	"testing"

	"mimoctl/internal/core"
	"mimoctl/internal/experiments"
	"mimoctl/internal/lqg"
	"mimoctl/internal/lti"
	"mimoctl/internal/mat"
	"mimoctl/internal/sim"
	"mimoctl/internal/sysid"
	"mimoctl/internal/workloads"
)

// ---- Paper figures and tables ----

func BenchmarkFig6WeightSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(experiments.DefaultSeed, 2000)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range res.Points {
			if p.Set.Label == "Power" {
				b.ReportMetric(float64(p.EpochsSteadyFreq), "Power-steady-epochs")
				b.ReportMetric(p.PowerErrPct, "Power-Perr%")
			}
		}
	}
}

func BenchmarkFig7ModelDimension(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(experiments.DefaultSeed, 8)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range res.Points {
			if p.Dimension == 4 {
				b.ReportMetric(p.MaxErrIPSPct, "dim4-IPSerr%")
				b.ReportMetric(p.MaxErrPowerPct, "dim4-Perr%")
			}
		}
	}
}

func BenchmarkFig8Uncertainty(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(experiments.DefaultSeed, 1000)
		if err != nil {
			b.Fatal(err)
		}
		hf, _, lf, _ := res.Averages()
		b.ReportMetric(hf, "high-steady-epochs")
		b.ReportMetric(lf, "low-steady-epochs")
	}
}

func BenchmarkFig9EnergyDelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(experiments.DefaultSeed, 6000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ReductionPct("MIMO"), "MIMO-EDreduction%")
		b.ReportMetric(res.ReductionPct("Heuristic"), "Heur-EDreduction%")
		b.ReportMetric(res.ReductionPct("Decoupled"), "Dec-EDreduction%")
	}
}

func BenchmarkFig10ThreeInput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(experiments.DefaultSeed, 6000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ReductionPct("MIMO"), "MIMO-EDreduction%")
		b.ReportMetric(res.ReductionPct("Heuristic"), "Heur-EDreduction%")
	}
}

func BenchmarkFig11Tracking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11(experiments.DefaultSeed, 3000)
		if err != nil {
			b.Fatal(err)
		}
		for _, arch := range experiments.Fig11Archs {
			ipsErr, _ := res.Average(arch, true)
			b.ReportMetric(ipsErr, arch+"-IPSerr%")
		}
	}
}

func BenchmarkFig12TimeVarying(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig12(experiments.DefaultSeed, 8000, 400)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanErr("astar", "MIMO"), "astar-MIMOerr%")
		b.ReportMetric(res.MeanErr("milc", "MIMO"), "milc-MIMOerr%")
	}
}

func BenchmarkTableE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableEDK(experiments.DefaultSeed, 5000, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ReductionPct("MIMO"), "MIMO-Ereduction%")
	}
}

func BenchmarkTableED2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableEDK(experiments.DefaultSeed, 5000, 3)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ReductionPct("MIMO"), "MIMO-ED2reduction%")
	}
}

// ---- Parallel experiment engine ----

// BenchmarkExpAll times the full experiment suite (every figure/table at
// a reduced epoch budget) at several worker counts. The design cache is
// pre-warmed outside the timer so the benchmark measures run execution,
// not one-time design. Output is byte-identical at every worker count
// (the golden suite asserts this); the benchmark measures only the
// wall-clock effect. On a single-CPU host the CPU-bound jobs cannot
// overlap, so expect parity there and see BenchmarkRunnerWallClock for
// the latency-bound scaling proof.
func BenchmarkExpAll(b *testing.B) {
	warmExpDesigns(b)
	for _, workers := range []int{0, 1, 4} {
		workers := workers
		b.Run(benchName("workers", workers), func(b *testing.B) {
			experiments.SetParallelism(workers)
			defer experiments.SetParallelism(0)
			for i := 0; i < b.N; i++ {
				runExpAll(b)
			}
		})
	}
}

// warmExpDesigns resolves every cached design artifact runExpAll needs.
func warmExpDesigns(b *testing.B) {
	b.Helper()
	for _, three := range []bool{false, true} {
		if _, _, err := experiments.DesignedMIMO(three, experiments.DefaultSeed); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := experiments.DesignedDecoupled(experiments.DefaultSeed); err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{1, 2, 3} {
		if _, err := experiments.BaselineFor(k, false, experiments.DefaultSeed); err != nil {
			b.Fatal(err)
		}
		if k == 2 {
			if _, err := experiments.BaselineFor(k, true, experiments.DefaultSeed); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// runExpAll runs one pass of every experiment at a reduced budget.
func runExpAll(b *testing.B) {
	b.Helper()
	seed := int64(experiments.DefaultSeed)
	if _, err := experiments.Fig6(seed, 600); err != nil {
		b.Fatal(err)
	}
	if _, err := experiments.Fig7(seed, 8); err != nil {
		b.Fatal(err)
	}
	if _, err := experiments.Fig8(seed, 400); err != nil {
		b.Fatal(err)
	}
	if _, err := experiments.Fig9(seed, 1500); err != nil {
		b.Fatal(err)
	}
	if _, err := experiments.Fig10(seed, 1500); err != nil {
		b.Fatal(err)
	}
	if _, err := experiments.Fig11(seed, 1200); err != nil {
		b.Fatal(err)
	}
	if _, err := experiments.Fig12(seed, 2000, 250); err != nil {
		b.Fatal(err)
	}
	if _, err := experiments.TableEDK(seed, 1200, 1); err != nil {
		b.Fatal(err)
	}
	if _, err := experiments.TableEDK(seed, 1200, 3); err != nil {
		b.Fatal(err)
	}
	if _, err := experiments.Ablation(seed, 800); err != nil {
		b.Fatal(err)
	}
	if _, err := experiments.FaultSweep(seed, 1000); err != nil {
		b.Fatal(err)
	}
}

// ---- Ablations (DESIGN.md §5) ----

// ablationTracking designs a MIMO controller with the given spec tweaks
// and reports its responsive-set tracking errors.
func ablationTracking(b *testing.B, mutate func(*core.DesignSpec)) (ipsErr, pErr float64) {
	b.Helper()
	spec := core.DesignSpec{
		Training: experiments.TrainingWorkloads(),
		Seed:     experiments.DefaultSeed,
	}
	if mutate != nil {
		mutate(&spec)
	}
	ctrl, _, err := core.DesignMIMO(spec)
	if err != nil {
		b.Fatal(err)
	}
	var sumI, sumP float64
	n := 0
	for _, p := range workloads.ResponsiveSet() {
		ctrl.SetTargets(core.DefaultIPSTarget, core.DefaultPowerTarget)
		st, err := experiments.RunTracking(ctrl, p, experiments.DefaultSeed+101, 2500, 500)
		if err != nil {
			b.Fatal(err)
		}
		sumI += st.IPSErrPct
		sumP += st.PowerErrPct
		n++
	}
	return sumI / float64(n), sumP / float64(n)
}

func BenchmarkAblationDeltaU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ipsOn, pOn := ablationTracking(b, nil)
		ipsOff, pOff := ablationTracking(b, func(s *core.DesignSpec) { s.DisableDeltaU = true })
		b.ReportMetric(ipsOn, "deltaU-IPSerr%")
		b.ReportMetric(pOn, "deltaU-Perr%")
		b.ReportMetric(ipsOff, "absU-IPSerr%")
		b.ReportMetric(pOff, "absU-Perr%")
	}
}

func BenchmarkAblationIntegral(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ipsOn, pOn := ablationTracking(b, nil)
		ipsOff, pOff := ablationTracking(b, func(s *core.DesignSpec) { s.DisableIntegral = true })
		b.ReportMetric(ipsOn, "integral-IPSerr%")
		b.ReportMetric(pOn, "integral-Perr%")
		b.ReportMetric(ipsOff, "noIntegral-IPSerr%")
		b.ReportMetric(pOff, "noIntegral-Perr%")
	}
}

func BenchmarkAblationQuantWeights(b *testing.B) {
	// Table III rationale: frequency gets a 20x weight over cache
	// because it has 4x the settings; equal weights make the controller
	// jump over frequency settings.
	for i := 0; i < b.N; i++ {
		ipsPaper, pPaper := ablationTracking(b, nil)
		ipsFlat, pFlat := ablationTracking(b, func(s *core.DesignSpec) {
			s.FreqWeight = core.DefaultCacheWeight // 1:1 instead of 20:1
		})
		b.ReportMetric(ipsPaper, "w20to1-IPSerr%")
		b.ReportMetric(pPaper, "w20to1-Perr%")
		b.ReportMetric(ipsFlat, "w1to1-IPSerr%")
		b.ReportMetric(pFlat, "w1to1-Perr%")
	}
}

func BenchmarkAblationModelDimension(b *testing.B) {
	for _, dim := range []int{2, 4, 8} {
		dim := dim
		b.Run(benchName("dim", dim), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ips, p := ablationTracking(b, func(s *core.DesignSpec) { s.ModelDimension = dim })
				b.ReportMetric(ips, "IPSerr%")
				b.ReportMetric(p, "Perr%")
			}
		})
	}
}

func benchName(prefix string, v int) string {
	return prefix + "=" + string(rune('0'+v))
}

// ---- Substrate micro-benchmarks ----

func BenchmarkControllerStep(b *testing.B) {
	// The runtime cost of one 50 µs controller invocation: the paper's
	// "four floating-point vector-matrix multiplies".
	ctrl, _, err := experiments.DesignedMIMO(false, experiments.DefaultSeed)
	if err != nil {
		b.Fatal(err)
	}
	ctrl.Reset()
	ctrl.SetTargets(2.5, 2.0)
	tel := sim.Telemetry{IPS: 2.3, PowerW: 1.9, Config: sim.MidrangeConfig()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tel.Config = ctrl.Step(tel)
	}
}

func BenchmarkProcessorEpoch(b *testing.B) {
	w, err := workloads.ByName("namd")
	if err != nil {
		b.Fatal(err)
	}
	proc, err := sim.NewProcessor(w, sim.DefaultProcessorOptions(), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		proc.Step()
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	c, err := sim.NewCache(sim.CacheGeometry{SizeBytes: 32 << 10, Ways: 4, LineBytes: 64})
	if err != nil {
		b.Fatal(err)
	}
	gen := sim.NewTraceGen(sim.DefaultTraceSpec(), rand.New(rand.NewSource(1)))
	addrs := gen.Generate(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i%len(addrs)])
	}
}

func BenchmarkSystemIdentification(b *testing.B) {
	data, err := core.CollectIdentificationData(experiments.TrainingWorkloads(), false, 1500, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sysid.FitARX(data, sysid.ARXOrders{NA: 2, NB: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDARE(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	n := 8
	a := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, rng.NormFloat64()*0.3)
		}
	}
	bm := mat.New(n, 2)
	for i := 0; i < n; i++ {
		bm.Set(i, 0, rng.NormFloat64())
		bm.Set(i, 1, rng.NormFloat64())
	}
	q := mat.Identity(n)
	r := mat.Identity(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lti.SolveDARE(a, bm, q, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLQGDesign(b *testing.B) {
	ctrl, rep, err := experiments.DesignedMIMO(false, experiments.DefaultSeed)
	if err != nil {
		b.Fatal(err)
	}
	_ = ctrl
	model := rep.Model
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := lqg.Design(model.SS,
			lqg.Weights{
				OutputWeights: []float64{core.DefaultIPSWeight, core.DefaultPowerWeight},
				InputWeights:  []float64{core.DefaultFreqWeight, core.DefaultCacheWeight},
			},
			lqg.Noise{W: model.W, V: model.V},
			lqg.Options{DeltaU: true, Integral: true})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHInfNorm(b *testing.B) {
	ctrl, rep, err := experiments.DesignedMIMO(false, experiments.DefaultSeed)
	if err != nil {
		b.Fatal(err)
	}
	css, err := ctrl.LQG().AsStateSpace()
	if err != nil {
		b.Fatal(err)
	}
	_ = css
	plant := rep.Model.SS
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := plant.HInfNorm(128); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSVD(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	a := mat.New(40, 12)
	for i := 0; i < 40; i++ {
		for j := 0; j < 12; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mat.FactorSVD(a); err != nil {
			b.Fatal(err)
		}
	}
}
