package mimoctl_test

// Overhead proof for the flight recorder (DESIGN.md "Hot path and
// memory discipline"): the controller step is benchmarked with the
// recorder detached (the seed hot path — the only added cost is one nil
// check) and attached (one uncontended mutex acquire plus a 128-byte
// record copy per epoch). The acceptance budget is zero allocations in
// both tiers and <5% ns/op overhead for the full experiment suite with
// harness-wide recording enabled.
//
// Run with: make bench  (or go test -bench=FlightRec -benchmem)

import (
	"testing"

	"mimoctl/internal/experiments"
	"mimoctl/internal/flightrec"
	"mimoctl/internal/sim"
)

func BenchmarkControllerStepFlightRec(b *testing.B) {
	ctrl, _, err := experiments.DesignedMIMO(false, experiments.DefaultSeed)
	if err != nil {
		b.Fatal(err)
	}
	for _, tier := range []struct {
		name string
		rec  *flightrec.Recorder
	}{
		{"detached", nil},
		{"attached", flightrec.New(4096)},
	} {
		b.Run(tier.name, func(b *testing.B) {
			c := ctrl.Clone()
			c.Reset()
			c.SetTargets(2.5, 2.0)
			c.SetFlightRecorder(tier.rec)
			defer c.SetFlightRecorder(nil)
			tel := sim.Telemetry{IPS: 2.3, PowerW: 1.9, Config: sim.MidrangeConfig()}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tel.Config = c.Step(tel)
			}
		})
	}
}

// BenchmarkFlightRecSuiteOverhead runs one pass of every experiment
// with harness-wide recording disabled and enabled (rings only, no dump
// directory) — the end-to-end cost of leaving the recorder on in CI.
// Deliberately named so the PARALLEL=1 capture's 'ExpAll' pattern does
// not pick it up: the allocs/op gate tracks the unrecorded loop.
func BenchmarkFlightRecSuiteOverhead(b *testing.B) {
	warmExpDesigns(b)
	for _, tier := range []struct {
		name string
		cfg  experiments.FlightRecConfig
	}{
		{"disabled", experiments.FlightRecConfig{}},
		{"enabled", experiments.FlightRecConfig{Enabled: true}},
	} {
		b.Run(tier.name, func(b *testing.B) {
			experiments.SetFlightRecording(tier.cfg)
			defer experiments.SetFlightRecording(experiments.FlightRecConfig{})
			for i := 0; i < b.N; i++ {
				runExpAll(b)
			}
		})
	}
}
